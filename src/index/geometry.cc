#include "index/geometry.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace vkg::index {

Rect Rect::Empty(size_t dim) {
  VKG_CHECK(dim >= 1 && dim <= kMaxDim);
  Rect r;
  r.dim = static_cast<uint8_t>(dim);
  for (size_t d = 0; d < dim; ++d) {
    r.lo[d] = std::numeric_limits<float>::max();
    r.hi[d] = std::numeric_limits<float>::lowest();
  }
  return r;
}

Rect Rect::BoundingBoxOfBall(const Point& center, double radius) {
  VKG_CHECK(radius >= 0);
  Rect r;
  r.dim = center.dim;
  for (size_t d = 0; d < center.dim; ++d) {
    r.lo[d] = static_cast<float>(center.c[d] - radius);
    r.hi[d] = static_cast<float>(center.c[d] + radius);
  }
  return r;
}

bool Rect::IsEmpty() const {
  for (size_t d = 0; d < dim; ++d) {
    if (lo[d] > hi[d]) return true;
  }
  return false;
}

void Rect::ExpandToFit(std::span<const float> p) {
  VKG_DCHECK(p.size() == dim);
  for (size_t d = 0; d < dim; ++d) {
    lo[d] = std::min(lo[d], p[d]);
    hi[d] = std::max(hi[d], p[d]);
  }
}

void Rect::ExpandToFit(const Rect& other) {
  VKG_DCHECK(other.dim == dim);
  if (other.IsEmpty()) return;
  for (size_t d = 0; d < dim; ++d) {
    lo[d] = std::min(lo[d], other.lo[d]);
    hi[d] = std::max(hi[d], other.hi[d]);
  }
}

bool Rect::Contains(std::span<const float> p) const {
  VKG_DCHECK(p.size() == dim);
  for (size_t d = 0; d < dim; ++d) {
    if (p[d] < lo[d] || p[d] > hi[d]) return false;
  }
  return true;
}

bool Rect::ContainsRect(const Rect& other) const {
  VKG_DCHECK(other.dim == dim);
  if (other.IsEmpty()) return true;
  for (size_t d = 0; d < dim; ++d) {
    if (other.lo[d] < lo[d] || other.hi[d] > hi[d]) return false;
  }
  return true;
}

bool Rect::Intersects(const Rect& other) const {
  VKG_DCHECK(other.dim == dim);
  for (size_t d = 0; d < dim; ++d) {
    if (lo[d] > other.hi[d] || hi[d] < other.lo[d]) return false;
  }
  return true;
}

double Rect::Volume() const {
  double v = 1.0;
  for (size_t d = 0; d < dim; ++d) {
    double side = static_cast<double>(hi[d]) - lo[d];
    if (side <= 0) return 0.0;
    v *= side;
  }
  return v;
}

double Rect::Margin() const {
  double m = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    m += std::max(0.0, static_cast<double>(hi[d]) - lo[d]);
  }
  return m;
}

double Rect::OverlapVolume(const Rect& other) const {
  VKG_DCHECK(other.dim == dim);
  double v = 1.0;
  for (size_t d = 0; d < dim; ++d) {
    double side = std::min<double>(hi[d], other.hi[d]) -
                  std::max<double>(lo[d], other.lo[d]);
    if (side <= 0) return 0.0;
    v *= side;
  }
  return v;
}

double Rect::MinDistSquared(std::span<const float> p) const {
  VKG_DCHECK(p.size() == dim);
  double s = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    double diff = 0.0;
    if (p[d] < lo[d]) {
      diff = static_cast<double>(lo[d]) - p[d];
    } else if (p[d] > hi[d]) {
      diff = static_cast<double>(p[d]) - hi[d];
    }
    s += diff * diff;
  }
  return s;
}

double Rect::MaxDistSquared(std::span<const float> p) const {
  VKG_DCHECK(p.size() == dim);
  double s = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    double lo_diff = std::fabs(static_cast<double>(p[d]) - lo[d]);
    double hi_diff = std::fabs(static_cast<double>(p[d]) - hi[d]);
    double diff = std::max(lo_diff, hi_diff);
    s += diff * diff;
  }
  return s;
}

std::string Rect::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t d = 0; d < dim; ++d) {
    if (d) os << ", ";
    os << lo[d] << ".." << hi[d];
  }
  os << "]";
  return os.str();
}

PointSet::PointSet(std::vector<float> coords, size_t dim)
    : coords_(std::move(coords)), dim_(dim) {
  VKG_CHECK(dim >= 1 && dim <= kMaxDim);
  VKG_CHECK(coords_.size() % dim == 0);
  size_ = coords_.size() / dim;
}

Rect PointSet::Bound(std::span<const uint32_t> ids) const {
  Rect r = Rect::Empty(dim_);
  for (uint32_t id : ids) r.ExpandToFit(at(id));
  return r;
}

double PointSet::DistSquared(uint32_t i, std::span<const float> p) const {
  std::span<const float> a = at(i);
  double s = 0.0;
  for (size_t d = 0; d < dim_; ++d) {
    double diff = static_cast<double>(a[d]) - p[d];
    s += diff * diff;
  }
  return s;
}

}  // namespace vkg::index
