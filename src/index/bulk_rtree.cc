#include "index/bulk_rtree.h"

// BulkRTree is header-only sugar over CrackingRTree::BuildFull(); this
// translation unit pins the vtable-free class into the library and keeps
// the module layout uniform.

namespace vkg::index {}  // namespace vkg::index
