#include "index/h2alsh.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

#include "util/check.h"

namespace vkg::index {

H2Alsh::H2Alsh(std::span<const float> data, size_t n, size_t d,
               const H2AlshConfig& config)
    : n_(n), d_(d), config_(config) {
  VKG_CHECK(d >= 1);
  VKG_CHECK(data.size() == n * d);
  VKG_CHECK(config.norm_ratio > 0 && config.norm_ratio < 1);
  VKG_CHECK(config.scale_u > 0 && config.scale_u <= 1);
  data_.assign(data.begin(), data.end());
  if (n == 0) return;

  // Sort items by descending norm and carve norm intervals
  // (b*M_j, M_j] — the homocentric hypersphere partition.
  std::vector<double> norms(n);
  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (size_t k = 0; k < d; ++k) {
      double v = data_[i * d + k];
      s += v * v;
    }
    norms[i] = std::sqrt(s);
  }
  std::vector<uint32_t> by_norm(n);
  std::iota(by_norm.begin(), by_norm.end(), 0u);
  std::sort(by_norm.begin(), by_norm.end(), [&](uint32_t a, uint32_t b) {
    return norms[a] > norms[b];
  });

  util::Rng rng(config.seed);
  size_t pos = 0;
  while (pos < n) {
    Subset s;
    s.max_norm = std::max(norms[by_norm[pos]], 1e-12);
    double lo = s.max_norm * config.norm_ratio;
    while (pos < n && norms[by_norm[pos]] > lo) {
      s.ids.push_back(by_norm[pos]);
      ++pos;
    }
    // All remaining items with (near-)zero norm go into the last subset.
    if (s.max_norm <= 1e-9) {
      while (pos < n) {
        s.ids.push_back(by_norm[pos]);
        ++pos;
      }
    }
    s.lambda = config.scale_u / s.max_norm;

    // QNF transform: x' = [λx ; sqrt(U² − ||λx||²)], so ||x'|| = U and
    // ||x' − [q̂;0]||² = U² + 1 − 2λ(q̂·x): NN under L2 == MIPS.
    const size_t dd = d + 1;
    s.transformed.resize(s.ids.size() * dd);
    for (size_t i = 0; i < s.ids.size(); ++i) {
      std::span<const float> x = ItemAt(s.ids[i]);
      double sq = 0.0;
      for (size_t k = 0; k < d; ++k) {
        float v = static_cast<float>(s.lambda * x[k]);
        s.transformed[i * dd + k] = v;
        sq += static_cast<double>(v) * v;
      }
      double rest = config.scale_u * config.scale_u - sq;
      s.transformed[i * dd + d] =
          static_cast<float>(std::sqrt(std::max(0.0, rest)));
    }

    // E2LSH tables, only when the subset is large enough to matter.
    if (s.ids.size() >= config.min_subset_for_lsh) {
      const size_t lk = config.num_tables * config.hashes_per_table;
      s.projections.resize(lk * dd);
      s.offsets.resize(lk);
      for (float& v : s.projections) {
        v = static_cast<float>(rng.Gaussian());
      }
      for (float& v : s.offsets) {
        v = static_cast<float>(rng.Uniform(0.0, config.bucket_width));
      }
      s.tables.resize(config.num_tables);
      for (size_t i = 0; i < s.ids.size(); ++i) {
        std::span<const float> v{s.transformed.data() + i * dd, dd};
        for (size_t t = 0; t < config.num_tables; ++t) {
          s.tables[t].buckets[Signature(s, t, v)].push_back(
              static_cast<uint32_t>(i));
        }
      }
    }
    subsets_.push_back(std::move(s));
  }
}

uint64_t H2Alsh::Signature(const Subset& s, size_t table,
                           std::span<const float> v) const {
  const size_t dd = d_ + 1;
  uint64_t sig = 1469598103934665603ULL;  // FNV offset
  for (size_t j = 0; j < config_.hashes_per_table; ++j) {
    size_t idx = table * config_.hashes_per_table + j;
    const float* a = s.projections.data() + idx * dd;
    double acc = s.offsets[idx];
    for (size_t k = 0; k < dd; ++k) {
      acc += static_cast<double>(a[k]) * v[k];
    }
    int64_t h = static_cast<int64_t>(std::floor(acc / config_.bucket_width));
    sig ^= static_cast<uint64_t>(h) + 0x9e3779b97f4a7c15ULL + (sig << 6) +
           (sig >> 2);
  }
  return sig;
}

std::vector<std::pair<double, uint32_t>> H2Alsh::TopK(
    std::span<const float> q, size_t k,
    const std::function<bool(uint32_t)>& skip,
    size_t* candidates_examined) const {
  VKG_CHECK(q.size() == d_);
  size_t num_candidates = 0;

  double qnorm = 0.0;
  for (float v : q) qnorm += static_cast<double>(v) * v;
  qnorm = std::sqrt(qnorm);
  if (qnorm == 0.0) qnorm = 1.0;
  std::vector<float> qhat(d_ + 1, 0.0f);
  for (size_t i = 0; i < d_; ++i) {
    qhat[i] = static_cast<float>(q[i] / qnorm);
  }

  // Min-heap over (inner product, id): keeps the k largest scores.
  using Scored = std::pair<double, uint32_t>;
  std::priority_queue<Scored, std::vector<Scored>, std::greater<>> best;

  std::vector<bool> considered(n_, false);
  auto consider = [&](uint32_t id) {
    if (considered[id]) return;
    considered[id] = true;
    if (skip && skip(id)) return;
    std::span<const float> x = ItemAt(id);
    double ip = 0.0;
    for (size_t i = 0; i < d_; ++i) {
      ip += static_cast<double>(x[i]) * q[i];
    }
    ++num_candidates;
    if (best.size() < k) {
      best.emplace(ip, id);
    } else if (ip > best.top().first) {
      best.pop();
      best.emplace(ip, id);
    }
  };

  for (const Subset& s : subsets_) {
    // Early termination: every item in this (and later) subsets has
    // inner product <= ||q|| * M_j.
    if (best.size() == k && best.top().first >= qnorm * s.max_norm) break;
    if (s.tables.empty()) {
      for (uint32_t id : s.ids) consider(id);
      continue;
    }
    for (size_t t = 0; t < s.tables.size(); ++t) {
      auto it = s.tables[t].buckets.find(Signature(s, t, qhat));
      if (it == s.tables[t].buckets.end()) continue;
      for (uint32_t pos : it->second) consider(s.ids[pos]);
    }
  }

  // Fallback: when the hash tables surfaced fewer than k candidates
  // (possible for out-of-distribution queries), finish with a scan so
  // the structure always returns k results.
  if (best.size() < k) {
    for (uint32_t id = 0; id < n_; ++id) consider(id);
  }

  std::vector<Scored> out;
  out.reserve(best.size());
  while (!best.empty()) {
    out.push_back(best.top());
    best.pop();
  }
  std::reverse(out.begin(), out.end());  // descending score
  if (candidates_examined != nullptr) *candidates_examined = num_candidates;
  return out;
}

size_t H2Alsh::MemoryBytes() const {
  size_t bytes = data_.capacity() * sizeof(float);
  for (const Subset& s : subsets_) {
    bytes += s.ids.capacity() * sizeof(uint32_t) +
             s.transformed.capacity() * sizeof(float) +
             s.projections.capacity() * sizeof(float) +
             s.offsets.capacity() * sizeof(float);
    for (const HashTable& t : s.tables) {
      bytes += t.buckets.size() * 48;
      for (const auto& [sig, ids] : t.buckets) {
        bytes += ids.capacity() * sizeof(uint32_t);
      }
    }
  }
  return bytes;
}

}  // namespace vkg::index
