#ifndef VKG_INDEX_TOPK_SPLITS_H_
#define VKG_INDEX_TOPK_SPLITS_H_

#include <cstddef>
#include <vector>

#include "index/rtree_node.h"
#include "index/sort_orders.h"
#include "util/deadline.h"

namespace vkg::index {

/// Counters reported by a partition chunking.
struct ChunkingStats {
  size_t binary_splits = 0;
  size_t astar_expansions = 0;
};

/// Splits the range [begin, end) of `orders` into consecutive chunks of
/// size <= m (the PARTITION function of Algorithm 1), returning the
/// chunk sizes left to right. The range's arrays are rearranged in
/// place so each chunk is a contiguous subrange in every sort order.
///
/// `orders` must be private to the caller. The copy-on-write cracking
/// path (DESIGN.md §6f) hands in a detached working copy built from the
/// node being split (with begin = 0), mutates it here, and publishes
/// the chunk ids as per-node owned blocks — the base arrays shared by
/// published tree versions are never touched. Offline bulk loading
/// still chunks the base arrays directly, before the tree is shared.
///
/// * `query == nullptr`: offline bulk-loading mode — greedy binary splits
///   under the classic overlap cost.
/// * `query != nullptr` and `config.split_choices == 1`: the greedy
///   INCREMENTALINDEXBUILD cost (c_Q major, c_O secondary).
/// * `query != nullptr` and `config.split_choices > 1`: Algorithm 2,
///   TOP-KSPLITSINDEXBUILD — A* search over candidate split sequences
///   ("change candidates"), expanding the top-k cheapest splits at each
///   step. Because the two-component cost is additive across contour
///   elements, optimizing each element's chunking independently is
///   equivalent to the paper's global search over contours; the priority
///   queue here explores alternative split sequences *within* the
///   element. Both cost components are non-decreasing along a path, so
///   the first fully-chunked state popped is optimal. A cap on
///   expansions (config.max_astar_expansions) bounds the work; past it,
///   the best candidate so far is finished greedily.
///
/// `control` (optional) stops the A* search early — a tripped deadline
/// or budget is treated exactly like the expansion cap: the best
/// candidate so far is finished greedily, so the committed chunking is
/// always complete and the tree stays valid.
std::vector<size_t> ChunkPartition(SortedOrders* orders, size_t begin,
                                   size_t end, size_t m, const Rect* query,
                                   const RTreeConfig& config, int height,
                                   ChunkingStats* stats,
                                   util::QueryControl* control = nullptr);

}  // namespace vkg::index

#endif  // VKG_INDEX_TOPK_SPLITS_H_
