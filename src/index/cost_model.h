#ifndef VKG_INDEX_COST_MODEL_H_
#define VKG_INDEX_COST_MODEL_H_

#include <cstddef>

#include "index/geometry.h"
#include "util/math_util.h"

namespace vkg::index {

/// Two-component node-splitting cost (Section IV-B1).
///
/// `cq` estimates leaf-page accesses for the current query region Q
/// (Lemma 3: sum over contour elements of ceil(|Q ∩ e| / N)); `co`
/// accumulates overlap penalties beta^h * ||O|| / min(||L||, ||H||) per
/// binary split. Comparison is lexicographic with cq as the major order —
/// the query-workload-optimized priority discussed in the paper.
struct CompositeCost {
  double cq = 0.0;
  double co = 0.0;

  friend bool operator<(const CompositeCost& a, const CompositeCost& b) {
    if (a.cq != b.cq) return a.cq < b.cq;
    return a.co < b.co;
  }
  friend bool operator==(const CompositeCost& a, const CompositeCost& b) {
    return a.cq == b.cq && a.co == b.co;
  }
  friend CompositeCost operator+(const CompositeCost& a,
                                 const CompositeCost& b) {
    return {a.cq + b.cq, a.co + b.co};
  }
};

/// ceil(count / leaf_capacity): minimum leaf pages for `count` points.
inline double LeafPages(size_t count, size_t leaf_capacity) {
  return static_cast<double>(util::CeilDiv(count, leaf_capacity));
}

/// Overlap component of one binary split at tree height `height`:
/// beta^h * ||O|| / min(||L||, ||H||). Degenerate volumes (points sharing
/// coordinates) fall back to a margin-based ratio so the penalty stays
/// finite and ordered.
double SplitOverlapCost(const Rect& left, const Rect& right, double beta,
                        int height);

/// Classic offline bulk-loading split cost (no query region): overlap
/// volume with a margin tie-breaker folded in at a small weight.
double ClassicSplitCost(const Rect& left, const Rect& right);

}  // namespace vkg::index

#endif  // VKG_INDEX_COST_MODEL_H_
