#include "index/factory.h"

namespace vkg::index {

std::string_view MethodName(MethodKind kind) {
  switch (kind) {
    case MethodKind::kNoIndex:
      return "no-index";
    case MethodKind::kPhTree:
      return "ph-tree";
    case MethodKind::kBulkRTree:
      return "bulk-load";
    case MethodKind::kCracking:
      return "crack";
    case MethodKind::kCracking2:
      return "crack-2choice";
    case MethodKind::kCracking3:
      return "crack-3choice";
    case MethodKind::kCracking4:
      return "crack-4choice";
    case MethodKind::kH2Alsh:
      return "h2-alsh";
  }
  return "unknown";
}

size_t SplitChoicesFor(MethodKind kind) {
  switch (kind) {
    case MethodKind::kCracking:
      return 1;
    case MethodKind::kCracking2:
      return 2;
    case MethodKind::kCracking3:
      return 3;
    case MethodKind::kCracking4:
      return 4;
    default:
      return 0;
  }
}

bool UsesRTree(MethodKind kind) {
  switch (kind) {
    case MethodKind::kBulkRTree:
    case MethodKind::kCracking:
    case MethodKind::kCracking2:
    case MethodKind::kCracking3:
    case MethodKind::kCracking4:
      return true;
    default:
      return false;
  }
}

}  // namespace vkg::index
