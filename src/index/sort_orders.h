#ifndef VKG_INDEX_SORT_ORDERS_H_
#define VKG_INDEX_SORT_ORDERS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "index/geometry.h"

namespace vkg::index {

/// The S sort orders of Algorithm 1 (BULKLOADCHUNK), stored as S parallel
/// permutation arrays of point ids — one per coordinate of S2. Since we
/// index points (degenerate rectangles), the min- and max-coordinate
/// orders coincide, so S = alpha.
///
/// A partition of the index is a contiguous range [begin, end) that
/// denotes the *same id set* in every order array. Splitting a partition
/// stable-partitions that range of every array in place by the split key,
/// preserving the invariant (Lemma 2: positions within a partition only
/// get closer after a split). This in-place "cracking" of the arrays
/// keeps per-partition index overhead O(1).
class SortedOrders {
 public:
  /// Sorts all point ids of `points` by each coordinate (ties broken by
  /// id, making every order a strict total order).
  explicit SortedOrders(const PointSet& points);

  /// Adopts pre-sorted id arrays (one per order, all permutations of the
  /// same id set). Used by copy-on-write cracks to chunk a detached
  /// working copy of one partition's ids without touching the shared
  /// base arrays (DESIGN.md §6f); the adopted arrays need not span the
  /// whole point set.
  SortedOrders(const PointSet& points,
               std::vector<std::vector<uint32_t>> orders);

  size_t num_orders() const { return orders_.size(); }
  size_t size() const { return orders_.empty() ? 0 : orders_[0].size(); }

  /// Ids of order `s` restricted to [begin, end).
  std::span<const uint32_t> Range(size_t s, size_t begin, size_t end) const {
    VKG_DCHECK(s < orders_.size());
    VKG_DCHECK(begin <= end && end <= orders_[s].size());
    return {orders_[s].data() + begin, end - begin};
  }

  /// Strict key comparison used by splits: id `a` precedes id `b` in
  /// order `s` iff (coord(a, s), a) < (coord(b, s), b).
  bool Precedes(uint32_t a, uint32_t b, size_t s) const {
    float ca = points_->coord(a, s);
    float cb = points_->coord(b, s);
    if (ca != cb) return ca < cb;
    return a < b;
  }

  /// Splits [begin, end) of every order: ids strictly preceding
  /// `boundary_id` in order `split_order` move to the left part. Returns
  /// the size of the left part (identical across orders by construction).
  /// SPLITONKEY of Algorithm 1.
  size_t SplitRange(size_t begin, size_t end, size_t split_order,
                    uint32_t boundary_id);

  /// Overwrites [begin, end) of order `s` with `ids` (used when adopting
  /// an A*-planned chunking; caller guarantees id-set consistency).
  void OverwriteRange(size_t s, size_t begin, std::span<const uint32_t> ids);

  const PointSet& points() const { return *points_; }

  size_t MemoryBytes() const;

 private:
  const PointSet* points_;
  std::vector<std::vector<uint32_t>> orders_;
  std::vector<uint32_t> scratch_;
};

}  // namespace vkg::index

#endif  // VKG_INDEX_SORT_ORDERS_H_
