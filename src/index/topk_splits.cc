#include "index/topk_splits.h"

#include <algorithm>
#include <memory>
#include <queue>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/math_util.h"

namespace vkg::index {

namespace {

PartitionView ViewOfRange(const SortedOrders& orders, size_t begin,
                          size_t end) {
  PartitionView view;
  view.num_orders = orders.num_orders();
  for (size_t s = 0; s < view.num_orders; ++s) {
    view.orders[s] = orders.Range(s, begin, end);
  }
  return view;
}

// ---------------------------------------------------------------------------
// Greedy chunking on the committed arrays (PARTITION of Algorithm 1 with
// the greedy best split; used for bulk loading and 1-choice cracking).
// ---------------------------------------------------------------------------

void GreedyChunk(SortedOrders* orders, size_t begin, size_t end, size_t m,
                 const Rect* query, const RTreeConfig& config, int height,
                 ChunkingStats* stats, std::vector<size_t>* sizes) {
  const size_t n = end - begin;
  if (n <= m) {
    sizes->push_back(n);
    return;
  }
  PartitionView view = ViewOfRange(*orders, begin, end);
  std::vector<SplitCandidate> cands = EnumerateSplits(
      view, orders->points(), m, query, config, height, /*top_k=*/1);
  VKG_CHECK(!cands.empty());
  const SplitCandidate& best = cands[0];
  size_t left =
      orders->SplitRange(begin, end, best.order, best.boundary_id);
  VKG_CHECK(left == best.left_count);
  ++stats->binary_splits;
  GreedyChunk(orders, begin, begin + left, m, query, config, height, stats,
              sizes);
  GreedyChunk(orders, begin + left, end, m, query, config, height, stats,
              sizes);
}

// ---------------------------------------------------------------------------
// A* chunking (Algorithm 2). States hold hypothetical partitions that are
// only committed to the shared arrays once a fully-chunked state wins.
// ---------------------------------------------------------------------------

// An immutable hypothetical partition: its own copies of the sort-order
// id lists plus the count of query points it contains.
struct Hypo {
  std::vector<std::vector<uint32_t>> order_ids;
  size_t q_count = 0;

  size_t size() const { return order_ids.empty() ? 0 : order_ids[0].size(); }

  PartitionView View() const {
    PartitionView v;
    v.num_orders = order_ids.size();
    for (size_t s = 0; s < order_ids.size(); ++s) v.orders[s] = order_ids[s];
    return v;
  }
};

using HypoPtr = std::shared_ptr<const Hypo>;

// A change candidate: the element's chunking-in-progress, left to right.
struct State {
  std::vector<HypoPtr> items;
  CompositeCost cost;
  size_t splits = 0;

  // Index of the first item still larger than m, or items.size().
  size_t FirstPending(size_t m) const {
    for (size_t i = 0; i < items.size(); ++i) {
      if (items[i]->size() > m) return i;
    }
    return items.size();
  }
};

struct StateCostGreater {
  bool operator()(const State& a, const State& b) const {
    return b.cost < a.cost;
  }
};

// Splits `item` with the chosen candidate into two new Hypos.
std::pair<HypoPtr, HypoPtr> SplitHypo(const Hypo& item,
                                      const SortedOrders& orders,
                                      const SplitCandidate& cand) {
  auto left = std::make_shared<Hypo>();
  auto right = std::make_shared<Hypo>();
  const size_t s_count = item.order_ids.size();
  left->order_ids.resize(s_count);
  right->order_ids.resize(s_count);
  for (size_t s = 0; s < s_count; ++s) {
    for (uint32_t id : item.order_ids[s]) {
      if (orders.Precedes(id, cand.boundary_id, cand.order)) {
        left->order_ids[s].push_back(id);
      } else {
        right->order_ids[s].push_back(id);
      }
    }
  }
  left->q_count = cand.q_left;
  right->q_count = cand.q_right;
  return {left, right};
}

// Replaces items[i] with its two halves, updating the state cost per
// lines 16-18 of Algorithm 2.
State Successor(const State& state, size_t i, const HypoPtr& left,
                const HypoPtr& right, const SplitCandidate& cand,
                const RTreeConfig& config) {
  State next;
  next.items.reserve(state.items.size() + 1);
  for (size_t j = 0; j < state.items.size(); ++j) {
    if (j == i) {
      next.items.push_back(left);
      next.items.push_back(right);
    } else {
      next.items.push_back(state.items[j]);
    }
  }
  next.cost.cq = state.cost.cq -
                 LeafPages(state.items[i]->q_count, config.leaf_capacity) +
                 LeafPages(left->q_count, config.leaf_capacity) +
                 LeafPages(right->q_count, config.leaf_capacity);
  next.cost.co = state.cost.co + cand.cost.co;
  next.splits = state.splits + 1;
  return next;
}

// Finishes all pending items of `state` greedily (used when the
// expansion cap is reached).
State GreedyFinish(State state, const SortedOrders& orders, size_t m,
                   const Rect* query, const RTreeConfig& config,
                   int height) {
  while (true) {
    size_t i = state.FirstPending(m);
    if (i == state.items.size()) return state;
    std::vector<SplitCandidate> cands =
        EnumerateSplits(state.items[i]->View(), orders.points(), m, query,
                        config, height, /*top_k=*/1);
    VKG_CHECK(!cands.empty());
    auto [left, right] = SplitHypo(*state.items[i], orders, cands[0]);
    state = Successor(state, i, left, right, cands[0], config);
  }
}

std::vector<size_t> AStarChunk(SortedOrders* orders, size_t begin,
                               size_t end, size_t m, const Rect* query,
                               const RTreeConfig& config, int height,
                               ChunkingStats* stats,
                               util::QueryControl* control) {
  // Seed state: the whole element as one hypothetical partition.
  auto root = std::make_shared<Hypo>();
  const size_t s_count = orders->num_orders();
  root->order_ids.resize(s_count);
  for (size_t s = 0; s < s_count; ++s) {
    std::span<const uint32_t> ids = orders->Range(s, begin, end);
    root->order_ids[s].assign(ids.begin(), ids.end());
  }
  root->q_count = CountInRegion(root->order_ids[0], orders->points(), *query);

  State init;
  init.items.push_back(root);
  init.cost.cq = LeafPages(root->q_count, config.leaf_capacity);
  init.cost.co = 0.0;

  std::priority_queue<State, std::vector<State>, StateCostGreater> pq;
  pq.push(std::move(init));

  State winner;
  bool found = false;
  size_t expansions = 0;
  while (!pq.empty()) {
    State state = pq.top();
    pq.pop();
    size_t i = state.FirstPending(m);
    if (i == state.items.size()) {
      winner = std::move(state);  // all items chunked: optimal by A*
      found = true;
      break;
    }
    // A tripped deadline/budget ends the search like the expansion cap:
    // finish the best candidate greedily so the commit below is always
    // a complete chunking.
    if (expansions >= config.max_astar_expansions ||
        (control != nullptr && control->ShouldStop())) {
      winner = GreedyFinish(std::move(state), *orders, m, query, config,
                            height);
      found = true;
      break;
    }
    ++expansions;
    std::vector<SplitCandidate> cands =
        EnumerateSplits(state.items[i]->View(), orders->points(), m, query,
                        config, height, config.split_choices);
    for (const SplitCandidate& cand : cands) {
      auto [left, right] = SplitHypo(*state.items[i], *orders, cand);
      pq.push(Successor(state, i, left, right, cand, config));
    }
  }
  VKG_CHECK(found);
  stats->astar_expansions += expansions;
  stats->binary_splits += winner.splits;

  // Commit the winning chunking to the shared arrays.
  std::vector<size_t> sizes;
  sizes.reserve(winner.items.size());
  for (size_t s = 0; s < s_count; ++s) {
    size_t offset = begin;
    for (const HypoPtr& item : winner.items) {
      orders->OverwriteRange(s, offset, item->order_ids[s]);
      offset += item->order_ids[s].size();
    }
    VKG_CHECK(offset == end);
  }
  for (const HypoPtr& item : winner.items) sizes.push_back(item->size());
  return sizes;
}

}  // namespace

std::vector<size_t> ChunkPartition(SortedOrders* orders, size_t begin,
                                   size_t end, size_t m, const Rect* query,
                                   const RTreeConfig& config, int height,
                                   ChunkingStats* stats,
                                   util::QueryControl* control) {
  VKG_CHECK(begin < end);
  VKG_CHECK(m >= 1);
  const ChunkingStats before = *stats;
  std::vector<size_t> sizes;
  if (query != nullptr && config.split_choices > 1 &&
      config.split_algorithm == SplitAlgorithm::kBestBinary) {
    // A* cost bookkeeping assumes the (c_Q, c_O) candidate semantics;
    // alternative split heuristics (R*) run greedily.
    sizes = AStarChunk(orders, begin, end, m, query, config, height, stats,
                       control);
  } else {
    GreedyChunk(orders, begin, end, m, query, config, height, stats,
                &sizes);
  }
  // Fold the per-call deltas into the global registry (DESIGN.md §6e) —
  // the per-tree ChunkingStats keeps feeding IndexStats as before.
  static obs::Counter& splits = obs::MetricsRegistry::Global().GetCounter(
      "vkg_binary_splits_total");
  static obs::Counter& expansions =
      obs::MetricsRegistry::Global().GetCounter(
          "vkg_astar_expansions_total");
  splits.Inc(stats->binary_splits - before.binary_splits);
  expansions.Inc(stats->astar_expansions - before.astar_expansions);
  return sizes;
}

}  // namespace vkg::index
