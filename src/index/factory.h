#ifndef VKG_INDEX_FACTORY_H_
#define VKG_INDEX_FACTORY_H_

#include <string_view>

namespace vkg::index {

/// The query-processing methods compared in the paper's experiments.
enum class MethodKind {
  kNoIndex,     // linear scan over S1 (ground truth)
  kPhTree,      // high-dimensional PH-tree over S1
  kBulkRTree,   // offline bulk-loaded R-tree over S2 (Algorithm 1)
  kCracking,    // greedy cracking index (INCREMENTALINDEXBUILD)
  kCracking2,   // TOP-KSPLITSINDEXBUILD, 2 split choices
  kCracking3,   // TOP-KSPLITSINDEXBUILD, 3 split choices
  kCracking4,   // TOP-KSPLITSINDEXBUILD, 4 split choices
  kH2Alsh,      // H2-ALSH baseline (single relationship type)
};

/// Human-readable method label (matches the figures' legends).
std::string_view MethodName(MethodKind kind);

/// Number of split choices k for the cracking variants (1 for the greedy
/// method; 0 for non-cracking methods).
size_t SplitChoicesFor(MethodKind kind);

/// True for the methods that build the S2 cracking/bulk R-tree.
bool UsesRTree(MethodKind kind);

}  // namespace vkg::index

#endif  // VKG_INDEX_FACTORY_H_
