#ifndef VKG_INDEX_RTREE_NODE_H_
#define VKG_INDEX_RTREE_NODE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "index/cost_model.h"
#include "index/geometry.h"
#include "index/sort_orders.h"

namespace vkg::index {

/// Which heuristic BESTBINARYSPLIT uses to rank candidate splits.
enum class SplitAlgorithm {
  /// The paper's cost: two-component (c_Q, c_O) online, classic overlap
  /// offline.
  kBestBinary,
  /// R*-tree-style: choose the split axis by minimum total margin, then
  /// the position by minimum overlap (area as tie-break). Demonstrates
  /// the paper's claim that the method adapts to other R-tree variants;
  /// ignores the query region (split_choices is treated as 1).
  kRStar,
};

/// Tuning knobs shared by the bulk-loaded and cracking R-trees.
struct RTreeConfig {
  /// N: max data points per leaf node.
  size_t leaf_capacity = 32;
  /// M: max children per non-leaf node.
  size_t fanout = 8;
  /// beta >= 1: splits higher in the tree penalize overlap more
  /// (Section IV-B1).
  double beta = 2.0;
  /// k: number of split choices explored per binary split (Algorithm 2);
  /// 1 reduces to the greedy INCREMENTALINDEXBUILD.
  size_t split_choices = 1;
  /// Cap on A* state expansions per partition chunking; beyond it the
  /// best state so far is finished greedily.
  size_t max_astar_expansions = 64;
  /// Ablation: when false, cracking splits use the classic overlap cost
  /// instead of the two-component (c_Q, c_O) cost of Section IV-B.
  bool use_query_cost = true;
  /// Ablation: when false, the stopping condition of Section IV-C step 3
  /// is disabled and touched partitions split all the way down.
  bool use_stopping_condition = true;
  /// Split-ranking heuristic (see SplitAlgorithm).
  SplitAlgorithm split_algorithm = SplitAlgorithm::kBestBinary;
};

/// A node of the (possibly partial) R-tree.
///
/// * kInternal — has child nodes; `mbr` bounds them.
/// * kLeaf — terminal node holding at most N points.
/// * kPartition — an *unsplit* element of the contour (Definition 2): a
///   range of point ids not yet broken into children.
///
/// Published nodes are immutable (DESIGN.md §6f): cracks never mutate a
/// node reachable from a published root — they build replacement
/// subtrees aside and swap the version pointer. Children are therefore
/// raw pointers, because consecutive versions share every untouched
/// subtree; ownership is by reachability from the current version plus
/// the epoch limbo list of retired nodes. Use DeleteSubtree (or NodePtr
/// for build-time error paths) to free a subtree that was never shared.
///
/// Contour elements carry their id set one of two ways: nodes from the
/// initial single-partition build reference [begin, end) of the
/// immutable base SortedOrders arrays; nodes produced by a crack own a
/// private copy in `owned_ids` (S consecutive blocks of size() ids, one
/// per sort order). `begin`/`end` always give the element's position in
/// the committed global order — contour elements tile [0, num_points) —
/// which is what serialization reconstructs the arrays from.
struct Node {
  enum class Kind : uint8_t { kLeaf, kPartition, kInternal };

  Kind kind = Kind::kPartition;
  int height = 0;  // 0 = leaf level
  Rect mbr;
  size_t begin = 0;
  size_t end = 0;
  std::vector<Node*> children;

  /// Owned per-order id blocks (empty when the node references the base
  /// arrays). Laid out as num_orders blocks of size() ids each.
  std::vector<uint32_t> owned_ids;

  size_t size() const { return end - begin; }
  bool IsContourElement() const { return kind != Kind::kInternal; }

  /// The owned id block for sort order `s`. Only meaningful when
  /// owned_ids is non-empty and s < num_orders.
  std::span<const uint32_t> OwnedIds(size_t s) const {
    const size_t n = size();
    VKG_DCHECK((s + 1) * n <= owned_ids.size());
    return {owned_ids.data() + s * n, n};
  }
};

/// Recursively deletes `node` and everything reachable from it. Only
/// call on subtrees that are not shared with any published version —
/// i.e. the current root at tree destruction, or a privately built
/// subtree abandoned before publication.
void DeleteSubtree(Node* node);

/// Deleter for build-time owning handles (serializer error paths).
struct SubtreeDeleter {
  void operator()(Node* node) const { DeleteSubtree(node); }
};
using NodePtr = std::unique_ptr<Node, SubtreeDeleter>;

/// One candidate binary split of a partition (BESTBINARYSPLIT output).
struct SplitCandidate {
  size_t order = 0;          // s*: which sort order the key comes from
  size_t left_count = 0;     // points in the left part
  uint32_t boundary_id = 0;  // first id of the right part in order s*
  Rect left_mbr;
  Rect right_mbr;
  size_t q_left = 0;   // |Q ∩ L| (0 when no query region)
  size_t q_right = 0;  // |Q ∩ R|
  CompositeCost cost;  // local cost of this split
};

/// A read-only view of a partition: one id span per sort order, all
/// denoting the same id set. Used so split enumeration works both on the
/// committed arrays and on hypothetical A* partitions.
struct PartitionView {
  std::array<std::span<const uint32_t>, kMaxDim> orders;
  size_t num_orders = 0;

  size_t size() const { return num_orders == 0 ? 0 : orders[0].size(); }
};

/// Enumerates candidate binary splits of `view` at chunk-aligned
/// positions (multiples of `m`) across every sort order, and returns the
/// `top_k` cheapest. With `query` == nullptr the classic offline cost is
/// used (cq holds the classic scalar); otherwise the two-component
/// (c_Q, c_O) cracking cost. Empty result means the partition cannot be
/// split (size <= m).
std::vector<SplitCandidate> EnumerateSplits(const PartitionView& view,
                                            const PointSet& points, size_t m,
                                            const Rect* query,
                                            const RTreeConfig& config,
                                            int height, size_t top_k);

/// Number of ids in `ids` whose points fall inside `query`.
size_t CountInRegion(std::span<const uint32_t> ids, const PointSet& points,
                     const Rect& query);

/// Bytes attributable to the index structure for this subtree (node
/// structs, child vectors, and owned id blocks; the shared base
/// sort-order arrays are data counted separately).
size_t SubtreeMemoryBytes(const Node& node);

/// Counts nodes by kind in the subtree.
struct NodeCounts {
  size_t internals = 0;
  size_t leaves = 0;
  size_t partitions = 0;
  size_t total() const { return internals + leaves + partitions; }
};
NodeCounts CountNodes(const Node& node);

}  // namespace vkg::index

#endif  // VKG_INDEX_RTREE_NODE_H_
