#include "index/linear_scan.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "embedding/vector_ops.h"

namespace vkg::index {

std::vector<std::pair<double, uint32_t>> LinearScan::TopK(
    std::span<const float> q, size_t k,
    const std::function<bool(uint32_t)>& skip) const {
  // Max-heap of the best k (distance, id) pairs seen so far.
  std::priority_queue<std::pair<double, uint32_t>> heap;
  const size_t n = store_->num_entities();
  for (uint32_t e = 0; e < n; ++e) {
    if (skip && skip(e)) continue;
    double d2 = embedding::L2DistanceSquared(store_->Entity(e), q);
    if (heap.size() < k) {
      heap.emplace(d2, e);
    } else if (d2 < heap.top().first) {
      heap.pop();
      heap.emplace(d2, e);
    }
  }
  std::vector<std::pair<double, uint32_t>> out;
  out.reserve(heap.size());
  while (!heap.empty()) {
    out.emplace_back(std::sqrt(heap.top().first), heap.top().second);
    heap.pop();
  }
  std::reverse(out.begin(), out.end());
  return out;
}

void LinearScan::Ball(std::span<const float> q, double radius,
                      const std::function<void(uint32_t, double)>& fn,
                      const std::function<bool(uint32_t)>& skip) const {
  const double r2 = radius * radius;
  const size_t n = store_->num_entities();
  for (uint32_t e = 0; e < n; ++e) {
    if (skip && skip(e)) continue;
    double d2 = embedding::L2DistanceSquared(store_->Entity(e), q);
    if (d2 <= r2) fn(e, std::sqrt(d2));
  }
}

}  // namespace vkg::index
