#include "index/linear_scan.h"

namespace vkg::index {

namespace {

// Always-false predicate for the no-skip case; inlines to nothing.
struct NoSkip {
  bool operator()(uint32_t) const { return false; }
};

}  // namespace

std::vector<std::pair<double, uint32_t>> LinearScan::TopK(
    std::span<const float> q, size_t k,
    const std::function<bool(uint32_t)>& skip,
    util::QueryControl* control) const {
  if (!skip) return TopK(q, k, NoSkip{}, control);
  return TopK(q, k, [&skip](uint32_t e) { return skip(e); }, control);
}

void LinearScan::Ball(std::span<const float> q, double radius,
                      const std::function<void(uint32_t, double)>& fn,
                      const std::function<bool(uint32_t)>& skip,
                      util::QueryControl* control) const {
  auto emit = [&fn](uint32_t e, double d) { fn(e, d); };
  if (!skip) return Ball(q, radius, emit, NoSkip{}, control);
  Ball(q, radius, emit, [&skip](uint32_t e) { return skip(e); }, control);
}

}  // namespace vkg::index
