#include "index/sort_orders.h"

#include <algorithm>
#include <numeric>

namespace vkg::index {

SortedOrders::SortedOrders(const PointSet& points) : points_(&points) {
  const size_t s_count = points.dim();
  orders_.resize(s_count);
  for (size_t s = 0; s < s_count; ++s) {
    std::vector<uint32_t>& order = orders_[s];
    order.resize(points.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      float ca = points.coord(a, s);
      float cb = points.coord(b, s);
      if (ca != cb) return ca < cb;
      return a < b;
    });
  }
  scratch_.resize(points.size());
}

SortedOrders::SortedOrders(const PointSet& points,
                           std::vector<std::vector<uint32_t>> orders)
    : points_(&points), orders_(std::move(orders)) {
  VKG_DCHECK(!orders_.empty());
  for (const std::vector<uint32_t>& order : orders_) {
    VKG_DCHECK(order.size() == orders_[0].size());
  }
  scratch_.resize(orders_[0].size());
}

size_t SortedOrders::SplitRange(size_t begin, size_t end, size_t split_order,
                                uint32_t boundary_id) {
  VKG_DCHECK(split_order < orders_.size());
  size_t left_size = 0;
  for (size_t s = 0; s < orders_.size(); ++s) {
    std::vector<uint32_t>& order = orders_[s];
    // Stable two-pass partition through the scratch buffer.
    size_t l = begin;
    size_t scratch_n = 0;
    for (size_t i = begin; i < end; ++i) {
      uint32_t id = order[i];
      if (Precedes(id, boundary_id, split_order)) {
        order[l++] = id;
      } else {
        scratch_[scratch_n++] = id;
      }
    }
    std::copy(scratch_.begin(), scratch_.begin() + scratch_n,
              order.begin() + l);
    if (s == 0) {
      left_size = l - begin;
    } else {
      VKG_DCHECK(left_size == l - begin);
    }
  }
  return left_size;
}

void SortedOrders::OverwriteRange(size_t s, size_t begin,
                                  std::span<const uint32_t> ids) {
  VKG_DCHECK(s < orders_.size());
  VKG_DCHECK(begin + ids.size() <= orders_[s].size());
  std::copy(ids.begin(), ids.end(), orders_[s].begin() + begin);
}

size_t SortedOrders::MemoryBytes() const {
  size_t bytes = scratch_.capacity() * sizeof(uint32_t);
  for (const auto& o : orders_) bytes += o.capacity() * sizeof(uint32_t);
  return bytes;
}

}  // namespace vkg::index
