#include "transform/jl_transform.h"

#include <cmath>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/random.h"

namespace vkg::transform {

namespace {

// Rows pushed through the projection (query centers and bulk entity
// loads alike): one counter, incremented per Apply call / per batch.
obs::Counter& ProjectionCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "vkg_jl_projections_total");
  return counter;
}

}  // namespace

JlTransform::JlTransform(size_t input_dim, size_t output_dim, uint64_t seed)
    : input_dim_(input_dim), output_dim_(output_dim) {
  VKG_CHECK(input_dim >= 1);
  VKG_CHECK(output_dim >= 1);
  util::Rng rng(seed);
  matrix_.resize(input_dim * output_dim);
  const float scale =
      static_cast<float>(1.0 / std::sqrt(static_cast<double>(output_dim)));
  for (float& v : matrix_) {
    v = static_cast<float>(rng.Gaussian()) * scale;
  }
}

void JlTransform::Apply(std::span<const float> in,
                        std::span<float> out) const {
  VKG_CHECK(in.size() == input_dim_);
  VKG_CHECK(out.size() == output_dim_);
  ProjectionCounter().Inc();
  for (size_t a = 0; a < output_dim_; ++a) {
    const float* row = matrix_.data() + a * input_dim_;
    double acc = 0.0;
    for (size_t d = 0; d < input_dim_; ++d) {
      acc += static_cast<double>(row[d]) * in[d];
    }
    out[a] = static_cast<float>(acc);
  }
}

std::vector<float> JlTransform::Apply(std::span<const float> in) const {
  std::vector<float> out(output_dim_);
  Apply(in, out);
  return out;
}

std::vector<float> JlTransform::ApplyToEntities(
    const embedding::EmbeddingStore& store) const {
  VKG_CHECK(store.dim() == input_dim_);
  const size_t n = store.num_entities();
  std::vector<float> out(n * output_dim_);
  for (size_t e = 0; e < n; ++e) {
    Apply(store.Entity(static_cast<kg::EntityId>(e)),
          {out.data() + e * output_dim_, output_dim_});
  }
  return out;
}

}  // namespace vkg::transform
