#include "transform/jl_bounds.h"

#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/math_util.h"

namespace vkg::transform {

double DeltaUpper(double eps, size_t alpha) {
  VKG_CHECK(eps > 0);
  double base = std::sqrt(1.0 + eps) / std::exp(eps / 2.0);
  return std::pow(base, static_cast<double>(alpha));
}

double DeltaLower(double eps, size_t alpha) {
  VKG_CHECK(eps > 0 && eps < 1);
  double base = std::sqrt(1.0 - eps) * std::exp(eps / 2.0);
  return std::pow(base, static_cast<double>(alpha));
}

double MissProbability(double m, size_t alpha) {
  if (m <= 1.0) return 1.0;
  double a = static_cast<double>(alpha);
  // m^alpha * exp(-alpha (m^2 - 1) / 2), computed in log space.
  double log_p = a * std::log(m) - a * (m * m - 1.0) / 2.0;
  return std::exp(log_p);
}

double FalseInclusionBound(double eps_prime, size_t alpha) {
  VKG_CHECK(eps_prime > 0 && eps_prime < 1);
  double a = static_cast<double>(alpha);
  double log_p = a * std::log(1.0 - eps_prime) +
                 a * (eps_prime - eps_prime * eps_prime / 2.0);
  return std::exp(log_p);
}

double MeanInverseDistanceRatio(size_t alpha) {
  if (alpha < 2) return std::numeric_limits<double>::infinity();
  double a = static_cast<double>(alpha);
  double log_ratio = 0.5 * std::log(a / 2.0) + util::LogGamma((a - 1.0) / 2.0) -
                     util::LogGamma(a / 2.0);
  return std::exp(log_ratio);
}

double MembershipProbability(double s2_dist, double radius_s1,
                             size_t alpha) {
  VKG_CHECK(radius_s1 > 0);
  if (s2_dist <= 0) return 1.0;
  double a = static_cast<double>(alpha);
  double c = s2_dist * std::sqrt(a) / radius_s1;
  return util::RegularizedGammaQ(a / 2.0, c * c / 2.0);
}

double ExpectedInverseMass(double d_min, double s2_dist, double radius_s1,
                           size_t alpha) {
  VKG_CHECK(radius_s1 > 0);
  double member = MembershipProbability(s2_dist, radius_s1, alpha);
  if (s2_dist <= 0) return member;
  double a = static_cast<double>(alpha);
  double c = s2_dist * std::sqrt(a) / radius_s1;
  // E[chi * 1{chi >= c}] = sqrt(2) Γ((a+1)/2)/Γ(a/2) Q((a+1)/2, c^2/2).
  double coeff = std::exp(0.5 * std::log(2.0) +
                          util::LogGamma((a + 1.0) / 2.0) -
                          util::LogGamma(a / 2.0));
  double mass = (d_min / (s2_dist * std::sqrt(a))) * coeff *
                util::RegularizedGammaQ((a + 1.0) / 2.0, c * c / 2.0);
  // Per-point probabilities never exceed 1, so the conditional mass is
  // bounded by the membership probability.
  return std::min(mass, member);
}

double EpsForUpperConfidence(double target, size_t alpha) {
  VKG_CHECK(target > 0 && target < 1);
  double lo = 1e-9, hi = 1.0;
  // Grow hi until the bound is small enough (DeltaUpper decreases in eps).
  while (DeltaUpper(hi, alpha) > target && hi < 1e6) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    double mid = 0.5 * (lo + hi);
    if (DeltaUpper(mid, alpha) > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace vkg::transform
