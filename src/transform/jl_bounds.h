#ifndef VKG_TRANSFORM_JL_BOUNDS_H_
#define VKG_TRANSFORM_JL_BOUNDS_H_

#include <cstddef>

namespace vkg::transform {

/// Theorem 1 tail bounds for the small-alpha JL transform.
///
/// For points u, v at S1 distance l1 and S2 distance l2 after the
/// transform to dimensionality alpha:
///
///   Pr[l2 >= sqrt(1+eps) * l1] <= DeltaUpper(eps, alpha)
///                               = ( sqrt(1+eps) / e^{eps/2} )^alpha,  eps > 0
///   Pr[l2 <= sqrt(1-eps) * l1] <= DeltaLower(eps, alpha)
///                               = ( sqrt(1-eps) * e^{eps/2} )^alpha,  0 < eps < 1
double DeltaUpper(double eps, size_t alpha);
double DeltaLower(double eps, size_t alpha);

/// Probability that the S2 distance of a pair exceeds m times its S1
/// distance (m > 1): m^alpha / e^{alpha (m^2 - 1) / 2}. This is the
/// per-entity miss term of Theorem 2 (with m_i = (r_k*/r_i*)(1+eps)).
/// Returns 1 for m <= 1.
double MissProbability(double m, size_t alpha);

/// Theorem 3 false-inclusion bound: probability that a point at S1
/// distance >= r_k* (1+eps)/(1-eps') enters the final query region:
/// (1-eps')^alpha * e^{alpha (eps' - eps'^2 / 2)} for 0 < eps' < 1.
double FalseInclusionBound(double eps_prime, size_t alpha);

/// Smallest eps > 0 such that DeltaUpper(eps, alpha) <= target
/// (bisection; target in (0,1)). Used to pick the query-radius expansion
/// for a desired confidence.
double EpsForUpperConfidence(double target, size_t alpha);

/// E[l1 / l2] for a pair at S1 distance l1 and transformed distance l2:
/// since l2 = l1 * chi_alpha / sqrt(alpha),
///   E[l1/l2] = sqrt(alpha/2) * Gamma((alpha-1)/2) / Gamma(alpha/2).
/// Estimating inverse-distance quantities (e.g., the probability model
/// p = d_min/d) from S2 distances overestimates by exactly this factor
/// (Jensen); divide by it to debias. Requires alpha >= 2 (infinite for
/// alpha == 1).
double MeanInverseDistanceRatio(size_t alpha);

/// Given a transformed distance l2 = s, the original distance is
/// l1 = s * sqrt(alpha) / chi_alpha. These evaluate the exact
/// conditional expectations used by the aggregate engine's ball
/// estimates:
///
///   MembershipProbability = P(l1 <= r | l2 = s)
///                         = Q(alpha/2, c^2/2), c = s sqrt(alpha) / r
double MembershipProbability(double s2_dist, double radius_s1,
                             size_t alpha);

///   ExpectedInverseMass = E[(d_min / l1) * 1{l1 <= r} | l2 = s]
///     = (d_min sqrt(2/alpha) / s) * (Γ((a+1)/2)/Γ(a/2))
///       * Q((alpha+1)/2, c^2/2),
/// capped by MembershipProbability (per-point probabilities are <= 1).
double ExpectedInverseMass(double d_min, double s2_dist, double radius_s1,
                           size_t alpha);

}  // namespace vkg::transform

#endif  // VKG_TRANSFORM_JL_BOUNDS_H_
