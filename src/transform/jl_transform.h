#ifndef VKG_TRANSFORM_JL_TRANSFORM_H_
#define VKG_TRANSFORM_JL_TRANSFORM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "embedding/store.h"
#include "util/status.h"

namespace vkg::transform {

/// Johnson-Lindenstrauss style Gaussian random projection from the
/// embedding space S1 (dim d, tens to hundreds) to the index space S2
/// (dim alpha, e.g. 3):
///
///     x  ↦  (1/sqrt(alpha)) · A · x
///
/// where A is alpha×d with i.i.d. N(0, 1) entries (Section III-B). The
/// mapping is linear, so T(h) + T(r) = T(h + r): query centers can be
/// transformed either before or after the addition.
class JlTransform {
 public:
  /// Builds the projection matrix. Requires 1 <= alpha and d >= 1.
  JlTransform(size_t input_dim, size_t output_dim, uint64_t seed);

  size_t input_dim() const { return input_dim_; }
  size_t output_dim() const { return output_dim_; }

  /// Applies the projection to one S1 vector (size input_dim) writing an
  /// S2 vector (size output_dim).
  void Apply(std::span<const float> in, std::span<float> out) const;

  /// Convenience overload returning a fresh vector.
  std::vector<float> Apply(std::span<const float> in) const;

  /// Projects all entity vectors of `store`, returning a row-major
  /// num_entities × output_dim array.
  std::vector<float> ApplyToEntities(
      const embedding::EmbeddingStore& store) const;

 private:
  size_t input_dim_;
  size_t output_dim_;
  std::vector<float> matrix_;  // row-major alpha × d, pre-scaled
};

}  // namespace vkg::transform

#endif  // VKG_TRANSFORM_JL_TRANSFORM_H_
