#include "net/chaos.h"

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <thread>
#include <utility>

#include "net/client.h"
#include "server/chaos.h"
#include "util/failpoint.h"
#include "util/random.h"
#include "util/socket.h"
#include "util/string_util.h"

namespace vkg::net {

namespace {

/// Same spirit as server/chaos RandomSchedule, tuned for loop-side
/// sites: a failed net.read/net.write kills a whole connection, so
/// faults are rarer and sequences end in `off`.
std::string RandomSchedule(util::Rng& rng, double max_delay_ms) {
  std::string spec;
  const size_t segments = 1 + rng.UniformIndex(3);
  for (size_t s = 0; s < segments; ++s) {
    const size_t count = 1 + rng.UniformIndex(20);
    spec += util::StrFormat("%zu*", count);
    const double roll = rng.Uniform();
    if (roll < 0.75) {
      spec += "off";
    } else if (roll < 0.92) {
      spec += "fail";
    } else {
      spec += util::StrFormat("delay(%.2f)",
                              rng.Uniform(0.1, max_delay_ms));
    }
    spec += ",";
  }
  spec += "off";
  return spec;
}

struct Oracle {
  query::TopKResult topk;
  double aggregate_value = 0.0;
  bool aggregate_exact = false;
  bool is_aggregate = false;
  bool valid = false;
};

bool MatchesOracle(const query::ServerResponse& got, const Oracle& want) {
  if (want.is_aggregate) {
    if (!got.aggregate.quality.exact || !want.aggregate_exact) return true;
    const double tol =
        1e-9 * std::max(1.0, std::abs(want.aggregate_value));
    if (std::abs(got.aggregate.value - want.aggregate_value) > tol) {
      std::fprintf(stderr,
                   "net chaos mismatch: aggregate got=%.12f want=%.12f\n",
                   got.aggregate.value, want.aggregate_value);
      return false;
    }
    return true;
  }
  if (!got.topk.quality.exact || !want.topk.quality.exact) return true;
  if (got.topk.hits.size() != want.topk.hits.size()) {
    std::fprintf(stderr, "net chaos mismatch: topk size got=%zu want=%zu\n",
                 got.topk.hits.size(), want.topk.hits.size());
    return false;
  }
  for (size_t h = 0; h < got.topk.hits.size(); ++h) {
    if (got.topk.hits[h].entity != want.topk.hits[h].entity ||
        std::abs(got.topk.hits[h].distance - want.topk.hits[h].distance) >
            1e-9) {
      std::fprintf(stderr, "net chaos mismatch: topk hit %zu differs\n", h);
      return false;
    }
  }
  return true;
}

/// One hostile byte sequence, seeded. Every variant must end with the
/// server closing the connection (our write end shuts down, so even a
/// silent truncation resolves to EOF on the server side).
std::string HostileBytes(util::Rng& rng,
                         const query::ServerRequest& slot) {
  const double roll = rng.Uniform();
  if (roll < 0.2) {
    // Pure garbage: bad magic on the first frame.
    std::string garbage;
    const size_t n = 1 + rng.UniformIndex(64);
    for (size_t i = 0; i < n; ++i) {
      garbage.push_back(static_cast<char>(rng.UniformIndex(256)));
    }
    return garbage;
  }
  std::string frame =
      EncodeFrame(FrameType::kRequest, EncodeRequest(7, slot));
  if (roll < 0.4) {
    // Oversized length field: rejected at the header, payload unread.
    frame[8] = static_cast<char>(0xff);
    frame[9] = static_cast<char>(0xff);
    frame[10] = static_cast<char>(0xff);
    frame[11] = static_cast<char>(0x7f);
    return frame.substr(0, kFrameHeaderSize);
  }
  if (roll < 0.6) {
    // Truncated mid-frame; our EOF must unblock the server.
    return frame.substr(0, 1 + rng.UniformIndex(frame.size() - 1));
  }
  if (roll < 0.8) {
    // One flipped bit: checksum (or an earlier header check) trips.
    const size_t byte = rng.UniformIndex(frame.size());
    frame[byte] = static_cast<char>(
        static_cast<unsigned char>(frame[byte]) ^
        (1u << rng.UniformIndex(8)));
    return frame;
  }
  // A valid request followed by garbage: the request is answered, the
  // garbage kills the connection.
  std::string tail;
  for (size_t i = 0; i < 16; ++i) {
    tail.push_back(static_cast<char>(rng.UniformIndex(256)));
  }
  return frame + tail;
}

}  // namespace

std::vector<std::string> AllNetChaosSites() {
  return {"net.accept", "net.read", "net.write", "net.frame"};
}

bool NetChaosReport::Passed(const NetChaosConfig& config) const {
  if (resolved != submitted) return false;
  if (mismatches != 0) return false;
  if (config.hostile_phase &&
      (hostile_handled != hostile_sent || !post_hostile_alive)) {
    return false;
  }
  if (config.drain_phase && !drain_clean) return false;
  if (net.open != 0) return false;
  return true;
}

std::string NetChaosReport::ToString() const {
  return util::StrFormat(
      "submitted=%zu resolved=%zu ok=%zu rejected=%zu failed=%zu "
      "deadline=%zu unavailable=%zu transport=%zu reconnects=%zu "
      "mismatches=%zu hostile=%zu/%zu post_hostile_alive=%d "
      "drain_clean=%d | accepted=%llu frames_rx=%llu frame_errors=%llu "
      "io_errors=%llu force_closed=%llu open=%llu",
      submitted, resolved, ok, rejected, failed, deadline, unavailable,
      transport_errors, reconnects, mismatches, hostile_handled,
      hostile_sent, post_hostile_alive ? 1 : 0, drain_clean ? 1 : 0,
      static_cast<unsigned long long>(net.accepted),
      static_cast<unsigned long long>(net.frames_rx),
      static_cast<unsigned long long>(net.frame_errors),
      static_cast<unsigned long long>(net.io_errors),
      static_cast<unsigned long long>(net.force_closed),
      static_cast<unsigned long long>(net.open));
}

NetChaosReport RunNetChaosCampaign(
    server::VkgServer& server,
    const std::vector<query::ServerRequest>& slots,
    const NetChaosConfig& config) {
  NetChaosReport report;
  if (slots.empty()) return report;
  util::FailPointRegistry& registry = util::FailPointRegistry::Instance();
  registry.Clear();

  NetServerConfig net_config = config.net;
  net_config.host = "127.0.0.1";
  net_config.port = 0;
  util::Result<std::unique_ptr<NetServer>> started =
      NetServer::Start(&server, net_config);
  if (!started.ok()) {
    std::fprintf(stderr, "net chaos: listener failed: %s\n",
                 started.status().ToString().c_str());
    return report;
  }
  std::unique_ptr<NetServer> net = std::move(started).value();
  NetClientConfig client_config;
  client_config.port = net->port();
  client_config.call_timeout_ms = 10000.0;

  // --- Oracle pass (in-process, fault-free) -------------------------------
  std::vector<Oracle> oracle(slots.size());
  for (size_t i = 0; i < slots.size(); ++i) {
    query::ServerRequest req = slots[i];
    req.deadline_ms = 0.0;
    req.budget = util::ResourceBudget{};
    req.bypass_cache = true;
    req.priority = 1;
    query::ServerResponse r = server.Execute(std::move(req));
    if (!r.ok()) continue;
    oracle[i].valid = true;
    if (slots[i].kind == query::RequestKind::kAggregate) {
      oracle[i].is_aggregate = true;
      oracle[i].aggregate_value = r.aggregate.value;
      oracle[i].aggregate_exact = r.aggregate.quality.exact;
    } else {
      oracle[i].topk = r.topk;
    }
  }

  std::atomic<size_t> submitted{0};
  std::atomic<size_t> resolved{0};
  std::atomic<size_t> count_ok{0};
  std::atomic<size_t> count_rejected{0};
  std::atomic<size_t> count_failed{0};
  std::atomic<size_t> count_deadline{0};
  std::atomic<size_t> count_unavailable{0};
  std::atomic<size_t> count_transport{0};
  std::atomic<size_t> count_mismatch{0};
  std::atomic<size_t> count_reconnect{0};

  auto classify = [&](const util::Result<query::ServerResponse>& r,
                      size_t slot) {
    resolved.fetch_add(1, std::memory_order_relaxed);
    if (r.ok()) {
      const query::ServerResponse& response = r.value();
      if (response.ok()) {
        count_ok.fetch_add(1, std::memory_order_relaxed);
        if (slot < oracle.size() && oracle[slot].valid &&
            !MatchesOracle(response, oracle[slot])) {
          count_mismatch.fetch_add(1, std::memory_order_relaxed);
        }
        return;
      }
      switch (response.status.code()) {
        case util::StatusCode::kResourceExhausted:
          count_rejected.fetch_add(1, std::memory_order_relaxed);
          return;
        case util::StatusCode::kDeadlineExceeded:
          count_deadline.fetch_add(1, std::memory_order_relaxed);
          return;
        case util::StatusCode::kUnavailable:
          count_unavailable.fetch_add(1, std::memory_order_relaxed);
          return;
        default:
          count_failed.fetch_add(1, std::memory_order_relaxed);
          return;
      }
    }
    // Transport-level failure: the connection died under us (injected
    // net.* fault, cap rejection, drain). Always a definitive Status.
    count_transport.fetch_add(1, std::memory_order_relaxed);
    switch (r.status().code()) {
      case util::StatusCode::kResourceExhausted:
        count_rejected.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        count_unavailable.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  };

  // --- Phase 1: randomized storm over real sockets ------------------------
  const size_t rounds = std::max<size_t>(config.rounds, 1);
  const size_t clients = std::max<size_t>(config.clients, 1);
  const size_t per_thread =
      (config.requests + rounds * clients - 1) / (rounds * clients);
  const std::vector<std::string> net_sites = AllNetChaosSites();
  const std::vector<std::string> server_sites = server::AllChaosSites();
  util::Rng arm_rng(config.seed);
  for (size_t round = 0; round < rounds; ++round) {
    for (const std::string& site : net_sites) {
      (void)registry.ConfigureSite(
          site, RandomSchedule(arm_rng, config.max_delay_ms));
    }
    if (config.arm_server_sites) {
      for (const std::string& site : server_sites) {
        (void)registry.ConfigureSite(
            site, RandomSchedule(arm_rng, config.max_delay_ms));
      }
    }
    std::vector<std::thread> storm;
    storm.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      storm.emplace_back([&, c, round] {
        util::Rng rng(config.seed ^ (0x9e3779b97f4a7c15ULL * (c + 1)) ^
                      (round * 1000003ULL));
        std::unique_ptr<NetClient> client;
        for (size_t i = 0; i < per_thread; ++i) {
          if (client == nullptr || !client->connected()) {
            util::Result<std::unique_ptr<NetClient>> conn =
                NetClient::Connect(client_config);
            if (!conn.ok()) {
              // Count the failed attempt as a resolved submission so a
              // refused connect cannot silently shrink the campaign.
              submitted.fetch_add(1, std::memory_order_relaxed);
              classify(conn.status(), oracle.size());
              continue;
            }
            client = std::move(conn).value();
            count_reconnect.fetch_add(1, std::memory_order_relaxed);
          }
          const size_t slot = rng.UniformIndex(slots.size());
          query::ServerRequest req = slots[slot];
          req.client_id = util::StrFormat("net-chaos-%zu", c);
          req.bypass_cache = rng.Bernoulli(0.2);
          req.priority = rng.Bernoulli(0.5) ? 1 : 0;
          if (rng.Bernoulli(config.deadline_fraction)) {
            req.deadline_ms = config.deadline_ms;
          }
          submitted.fetch_add(1, std::memory_order_relaxed);
          classify(client->Call(req), slot);
        }
        if (client != nullptr) client->Goodbye();
      });
    }
    for (std::thread& t : storm) t.join();
    registry.Clear();
    server.Drain();
  }

  // --- Phase 2: deterministic hostile connections -------------------------
  if (config.hostile_phase) {
    util::Rng rng(config.seed ^ 0xdeadbeefULL);
    for (size_t h = 0; h < config.hostile_connections; ++h) {
      util::Result<util::Socket> conn = util::ConnectTcp(
          "127.0.0.1", net->port(), util::Deadline::AfterMillis(2000.0));
      if (!conn.ok()) continue;
      util::Socket socket = std::move(conn).value();
      const std::string bytes =
          HostileBytes(rng, slots[rng.UniformIndex(slots.size())]);
      ++report.hostile_sent;
      (void)util::SendAll(socket, bytes.data(), bytes.size(),
                          util::Deadline::AfterMillis(2000.0));
      // Our write end closes, so a silent truncation resolves to EOF on
      // the server side instead of waiting out the read deadline.
      shutdown(socket.fd(), SHUT_WR);
      // Handled = the server closes the connection (error frames before
      // the close are fine). A server that neither answers nor closes
      // within the window has hung on hostile input.
      const util::Deadline deadline = util::Deadline::AfterMillis(5000.0);
      char buf[4096];
      bool closed = false;
      for (;;) {
        util::Result<size_t> got =
            util::RecvSome(socket, buf, sizeof(buf), deadline);
        if (!got.ok()) {
          closed = got.status().code() != util::StatusCode::kDeadlineExceeded;
          break;
        }
        if (got.value() == 0) {
          closed = true;
          break;
        }
      }
      if (closed) ++report.hostile_handled;
    }
    // The server must still answer a well-formed client. The storm may
    // have legitimately tripped circuit breakers or pressure state that
    // self-heals on its own cooldown, so the liveness probe retries
    // inside a bounded window: the invariant is "the stack recovers to
    // serving OK", not "the first post-storm request gets lucky".
    const util::Deadline probe_deadline = util::Deadline::AfterMillis(5000.0);
    while (!probe_deadline.Expired()) {
      util::Result<std::unique_ptr<NetClient>> probe =
          NetClient::Connect(client_config);
      if (probe.ok()) {
        query::ServerRequest req = slots[0];
        req.bypass_cache = true;
        req.priority = 1;
        submitted.fetch_add(1, std::memory_order_relaxed);
        util::Result<query::ServerResponse> r = probe.value()->Call(req);
        classify(r, 0);
        report.post_hostile_alive = r.ok() && r.value().ok();
        probe.value()->Goodbye();
        if (report.post_hostile_alive) break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }

  // --- Phase 3: graceful drain under load ---------------------------------
  if (config.drain_phase) {
    std::atomic<bool> drained{false};
    std::vector<std::thread> burst;
    for (size_t c = 0; c < clients; ++c) {
      burst.emplace_back([&, c] {
        util::Rng rng(config.seed ^ (0xabcdef1234ULL * (c + 1)));
        std::unique_ptr<NetClient> client;
        while (!drained.load(std::memory_order_relaxed)) {
          if (client == nullptr || !client->connected()) {
            util::Result<std::unique_ptr<NetClient>> conn =
                NetClient::Connect(client_config);
            if (!conn.ok()) break;  // listener is gone: drain finished
            client = std::move(conn).value();
          }
          const size_t slot = rng.UniformIndex(slots.size());
          submitted.fetch_add(1, std::memory_order_relaxed);
          util::Result<query::ServerResponse> r = client->Call(slots[slot]);
          classify(r, slot);
          if (!r.ok()) break;  // drain reached us; every call resolved
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    net->Stop();
    drained.store(true, std::memory_order_relaxed);
    for (std::thread& t : burst) t.join();
    // The drain must leave the in-process server serving. Same bounded
    // retry as the post-hostile probe: breakers tripped by the burst
    // (or by the storm rounds) recover on their own cooldown, and that
    // recovery — not first-request luck — is the invariant.
    const util::Deadline probe_deadline = util::Deadline::AfterMillis(5000.0);
    while (!probe_deadline.Expired()) {
      query::ServerRequest probe = slots[0];
      probe.bypass_cache = true;
      probe.priority = 1;
      query::ServerResponse r = server.Execute(std::move(probe));
      report.drain_clean = r.ok();
      if (report.drain_clean) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }

  net->Stop();
  report.net = net->Stats();
  registry.Clear();
  server.Drain();

  report.submitted = submitted.load();
  report.resolved = resolved.load();
  report.ok = count_ok.load();
  report.rejected = count_rejected.load();
  report.failed = count_failed.load();
  report.deadline = count_deadline.load();
  report.unavailable = count_unavailable.load();
  report.transport_errors = count_transport.load();
  report.reconnects = count_reconnect.load();
  report.mismatches = count_mismatch.load();
  return report;
}

}  // namespace vkg::net
