#include "net/frame.h"

#include <cstring>

#include "util/serialize.h"
#include "util/string_util.h"

namespace vkg::net {

namespace {

void PutLe16(std::string& out, uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutLe32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutLe64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint16_t GetLe16(const char* p) {
  return static_cast<uint16_t>(static_cast<unsigned char>(p[0]) |
                               (static_cast<unsigned char>(p[1]) << 8));
}

uint32_t GetLe32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

uint64_t GetLe64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

}  // namespace

bool KnownFrameType(uint16_t type) {
  return type >= static_cast<uint16_t>(FrameType::kRequest) &&
         type <= static_cast<uint16_t>(FrameType::kGoodbye);
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameOverhead + payload.size());
  PutLe32(out, kFrameMagic);
  PutLe16(out, kWireVersion);
  PutLe16(out, static_cast<uint16_t>(type));
  PutLe32(out, static_cast<uint32_t>(payload.size()));
  out.append(payload.data(), payload.size());
  const uint64_t crc =
      util::Fnv1a(util::kFnvOffsetBasis, out.data(), out.size());
  PutLe64(out, crc);
  return out;
}

void FrameDecoder::Feed(std::string_view bytes) {
  if (poisoned()) return;  // connection is closing; drop the bytes
  buffer_.append(bytes.data(), bytes.size());
}

FrameDecoder::Next FrameDecoder::Pull(Frame* frame) {
  if (poisoned()) return Next::kError;
  if (buffer_.size() < kFrameHeaderSize) return Next::kNeedMore;

  const uint32_t magic = GetLe32(buffer_.data());
  if (magic != kFrameMagic) {
    error_ = util::Status::DataLoss(
        util::StrFormat("bad frame magic 0x%08x", magic));
    return Next::kError;
  }
  const uint16_t version = GetLe16(buffer_.data() + 4);
  if (version == 0 || version > kWireVersion) {
    // Forward-compat contract: a peer speaking a newer version gets a
    // clean "unsupported version" error, not a parse explosion.
    error_ = util::Status::DataLoss(
        util::StrFormat("unsupported wire version %u (speaking %u)",
                        version, kWireVersion));
    return Next::kError;
  }
  const uint16_t type = GetLe16(buffer_.data() + 6);
  if (!KnownFrameType(type)) {
    error_ = util::Status::DataLoss(
        util::StrFormat("unknown frame type %u", type));
    return Next::kError;
  }
  const uint32_t length = GetLe32(buffer_.data() + 8);
  if (length > max_payload_) {
    error_ = util::Status::DataLoss(
        util::StrFormat("frame payload %u bytes > cap %zu", length,
                        max_payload_));
    return Next::kError;
  }

  const size_t total = kFrameHeaderSize + length + kFrameChecksumSize;
  if (buffer_.size() < total) return Next::kNeedMore;

  const uint64_t want = GetLe64(buffer_.data() + kFrameHeaderSize + length);
  const uint64_t got = util::Fnv1a(util::kFnvOffsetBasis, buffer_.data(),
                                   kFrameHeaderSize + length);
  if (want != got) {
    error_ = util::Status::DataLoss("frame checksum mismatch");
    return Next::kError;
  }

  frame->type = static_cast<FrameType>(type);
  frame->payload.assign(buffer_, kFrameHeaderSize, length);
  buffer_.erase(0, total);
  ++frames_decoded_;
  return Next::kFrame;
}

}  // namespace vkg::net
