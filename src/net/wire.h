#ifndef VKG_NET_WIRE_H_
#define VKG_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "query/request.h"
#include "util/status.h"

namespace vkg::net {

/// Payload (de)serialization for the wire protocol (DESIGN.md §6i):
/// little-endian fixed-width primitives plus u32-length-prefixed
/// strings, encoded with WireWriter and decoded with the hostile-input-
/// hardened WireReader. Every length field is validated against the
/// bytes actually present before any allocation, so a malicious count
/// yields a clean kDataLoss status, never an OOM or overread.

class WireWriter {
 public:
  void PutU8(uint8_t v) { PutBytes(&v, sizeof(v)); }
  void PutU16(uint16_t v) { PutBytes(&v, sizeof(v)); }
  void PutU32(uint32_t v) { PutBytes(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutBytes(&v, sizeof(v)); }
  void PutF64(double v) { PutBytes(&v, sizeof(v)); }
  /// u32 length prefix + raw bytes.
  void PutString(std::string_view s);
  void PutBytes(const void* data, size_t n);

  const std::string& data() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked reader over one payload. The first short read makes
/// the status sticky; callers check ok() once after a batch of reads
/// (reads after a failure return zero values).
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  uint64_t U64();
  double F64();
  /// Reads a u32-length-prefixed string, rejecting lengths beyond
  /// `max_len` or the remaining payload.
  std::string String(size_t max_len = 1u << 20);

  bool ok() const { return status_.ok(); }
  const util::Status& status() const { return status_; }
  size_t remaining() const { return data_.size() - pos_; }
  /// True when the payload was consumed exactly (trailing garbage in a
  /// frame is a protocol violation).
  bool AtEnd() const { return ok() && pos_ == data_.size(); }

  void Fail(const std::string& what);

 private:
  bool Take(void* out, size_t n, const char* what);

  std::string_view data_;
  size_t pos_ = 0;
  util::Status status_;
};

/// Upper bounds enforced while decoding request/response payloads.
inline constexpr size_t kMaxClientIdLen = 256;
inline constexpr size_t kMaxAttributeLen = 4096;
inline constexpr size_t kMaxStatusMessageLen = 4096;
inline constexpr size_t kMaxWireHits = 1u << 20;

/// Request payload: request_id (client-chosen, echoed on the response
/// so pipelined requests match up) + every ServerRequest field the
/// server reads. Aggregate sample_values never cross the wire.
std::string EncodeRequest(uint64_t request_id,
                          const query::ServerRequest& request);
util::Status DecodeRequest(std::string_view payload, uint64_t* request_id,
                           query::ServerRequest* request);

/// Response payload: request_id + status + serving meta + the kind-
/// specific result.
std::string EncodeResponse(uint64_t request_id,
                           const query::ServerResponse& response,
                           query::RequestKind kind);
util::Status DecodeResponse(std::string_view payload, uint64_t* request_id,
                            query::ServerResponse* response);

/// Protocol-level error payload carried by FrameType::kError — the
/// connection-scoped failures that are not a response to one request
/// (malformed frame, connection cap, drain). `retry_after_ms` follows
/// the server-wide rejection semantics (see ServerMeta::retry_after_ms).
enum class WireErrorCode : uint32_t {
  kMalformed = 1,     // unparseable frame or payload; connection closes
  kRejected = 2,      // connection/pipeline cap; retry_after_ms set
  kShuttingDown = 3,  // server draining; connection closes after flush
  kIdle = 4,          // idle/read timeout; connection closes
  kInternal = 5,
};

struct WireError {
  WireErrorCode code = WireErrorCode::kInternal;
  double retry_after_ms = 0.0;
  std::string message;
};

std::string EncodeWireError(const WireError& error);
util::Status DecodeWireError(std::string_view payload, WireError* error);

}  // namespace vkg::net

#endif  // VKG_NET_WIRE_H_
