#ifndef VKG_NET_CLIENT_H_
#define VKG_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "net/frame.h"
#include "net/wire.h"
#include "query/request.h"
#include "util/socket.h"
#include "util/status.h"

namespace vkg::net {

struct NetClientConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  double connect_timeout_ms = 2000.0;
  /// Per Call()/Receive() wall budget, independent of the request's own
  /// deadline_ms (which the server enforces).
  double call_timeout_ms = 10000.0;
  size_t max_frame_bytes = kDefaultMaxPayload;
};

/// Blocking client for the framed wire protocol. Not thread-safe; one
/// connection per client. Failure surface is util::Status, never an
/// exception: connection-scoped kError frames map to
///   kRejected      -> ResourceExhausted (retry_after in last_error())
///   kShuttingDown  -> Unavailable
///   kMalformed     -> DataLoss (the server rejected our bytes)
///   kIdle          -> DeadlineExceeded (server timed the connection out)
/// and transport failures (EPIPE, reset, timeout) come back as the
/// Status util::SendAll / util::RecvSome produced.
class NetClient {
 public:
  static util::Result<std::unique_ptr<NetClient>> Connect(
      const NetClientConfig& config);

  /// One request/response round trip (Send + Receive until the id
  /// matches).
  util::Result<query::ServerResponse> Call(
      const query::ServerRequest& request);

  /// Pipelined half: queue a request without waiting.
  util::Status Send(uint64_t request_id,
                    const query::ServerRequest& request);
  /// Pipelined half: next response frame, any id.
  util::Result<query::ServerResponse> Receive(uint64_t* request_id);

  /// Round trip an empty kPing/kPong pair.
  util::Status Ping();

  /// Best-effort kGoodbye; the server flushes in-flight responses and
  /// closes.
  void Goodbye();

  /// Escape hatch for protocol tests: raw bytes, no framing.
  util::Status SendRaw(std::string_view bytes);

  /// The last connection-scoped kError frame the server pushed.
  const WireError& last_error() const { return last_error_; }

  bool connected() const { return socket_.valid(); }
  void Close() { socket_.Close(); }

 private:
  explicit NetClient(const NetClientConfig& config)
      : config_(config), decoder_(config.max_frame_bytes) {}

  /// Blocks until a complete frame arrives or `deadline` expires.
  util::Result<Frame> ReadFrame(const util::Deadline& deadline);

  NetClientConfig config_;
  util::Socket socket_;
  FrameDecoder decoder_;
  WireError last_error_;
  uint64_t next_request_id_ = 1;
};

}  // namespace vkg::net

#endif  // VKG_NET_CLIENT_H_
