#include "net/client.h"

#include <utility>

#include "util/string_util.h"

namespace vkg::net {

namespace {

util::Status StatusFromWireError(const WireError& error) {
  switch (error.code) {
    case WireErrorCode::kRejected:
      return util::Status::ResourceExhausted(util::StrFormat(
          "server rejected connection/request (retry after %.0f ms): %s",
          error.retry_after_ms, error.message.c_str()));
    case WireErrorCode::kShuttingDown:
      return util::Status::Unavailable("server draining: " + error.message);
    case WireErrorCode::kMalformed:
      return util::Status::DataLoss("server rejected our bytes: " +
                                    error.message);
    case WireErrorCode::kIdle:
      return util::Status::DeadlineExceeded("server timed connection out: " +
                                            error.message);
    case WireErrorCode::kInternal:
      break;
  }
  return util::Status::Internal("server error: " + error.message);
}

}  // namespace

util::Result<std::unique_ptr<NetClient>> NetClient::Connect(
    const NetClientConfig& config) {
  util::IgnoreSigPipe();
  std::unique_ptr<NetClient> client(new NetClient(config));
  VKG_ASSIGN_OR_RETURN(
      client->socket_,
      util::ConnectTcp(config.host, config.port,
                       util::Deadline::AfterMillis(
                           config.connect_timeout_ms)));
  return client;
}

util::Status NetClient::Send(uint64_t request_id,
                             const query::ServerRequest& request) {
  if (!socket_.valid()) return util::Status::Unavailable("not connected");
  const std::string frame =
      EncodeFrame(FrameType::kRequest, EncodeRequest(request_id, request));
  return util::SendAll(socket_, frame.data(), frame.size(),
                       util::Deadline::AfterMillis(config_.call_timeout_ms));
}

util::Result<Frame> NetClient::ReadFrame(const util::Deadline& deadline) {
  Frame frame;
  for (;;) {
    switch (decoder_.Pull(&frame)) {
      case FrameDecoder::Next::kFrame:
        return frame;
      case FrameDecoder::Next::kError:
        socket_.Close();
        return decoder_.error();
      case FrameDecoder::Next::kNeedMore:
        break;
    }
    if (!socket_.valid()) return util::Status::Unavailable("not connected");
    char buf[16384];
    VKG_ASSIGN_OR_RETURN(
        const size_t n,
        util::RecvSome(socket_, buf, sizeof(buf), deadline));
    if (n == 0) {
      socket_.Close();
      return util::Status::Unavailable("server closed the connection");
    }
    decoder_.Feed(std::string_view(buf, n));
  }
}

util::Result<query::ServerResponse> NetClient::Receive(
    uint64_t* request_id) {
  const util::Deadline deadline =
      util::Deadline::AfterMillis(config_.call_timeout_ms);
  for (;;) {
    VKG_ASSIGN_OR_RETURN(Frame frame, ReadFrame(deadline));
    switch (frame.type) {
      case FrameType::kResponse: {
        query::ServerResponse response;
        VKG_RETURN_IF_ERROR(
            DecodeResponse(frame.payload, request_id, &response));
        return response;
      }
      case FrameType::kError: {
        WireError error;
        const util::Status decoded =
            DecodeWireError(frame.payload, &error);
        socket_.Close();  // kError is connection-scoped; server closes too
        if (!decoded.ok()) return decoded;
        last_error_ = error;
        return StatusFromWireError(error);
      }
      case FrameType::kGoodbye:
        socket_.Close();
        return util::Status::Unavailable("server said goodbye");
      case FrameType::kPong:
        continue;  // stale ping answer; keep waiting for the response
      default:
        socket_.Close();
        return util::Status::DataLoss("unexpected frame type from server");
    }
  }
}

util::Result<query::ServerResponse> NetClient::Call(
    const query::ServerRequest& request) {
  const uint64_t id = next_request_id_++;
  VKG_RETURN_IF_ERROR(Send(id, request));
  for (;;) {
    uint64_t got_id = 0;
    VKG_ASSIGN_OR_RETURN(query::ServerResponse response, Receive(&got_id));
    if (got_id == id) return response;
    // A pipelined caller mixing Call() with Send()/Receive() could land
    // here; for the pure-Call() client an id mismatch is corruption.
    return util::Status::DataLoss(
        util::StrFormat("response id %llu does not match request id %llu",
                        static_cast<unsigned long long>(got_id),
                        static_cast<unsigned long long>(id)));
  }
}

util::Status NetClient::Ping() {
  if (!socket_.valid()) return util::Status::Unavailable("not connected");
  const std::string frame = EncodeFrame(FrameType::kPing, "");
  VKG_RETURN_IF_ERROR(util::SendAll(
      socket_, frame.data(), frame.size(),
      util::Deadline::AfterMillis(config_.call_timeout_ms)));
  const util::Deadline deadline =
      util::Deadline::AfterMillis(config_.call_timeout_ms);
  for (;;) {
    VKG_ASSIGN_OR_RETURN(Frame reply, ReadFrame(deadline));
    if (reply.type == FrameType::kPong) return util::Status::OK();
    if (reply.type == FrameType::kError) {
      WireError error;
      VKG_RETURN_IF_ERROR(DecodeWireError(reply.payload, &error));
      last_error_ = error;
      socket_.Close();
      return StatusFromWireError(error);
    }
    // A late kResponse for an abandoned request: drop it, keep waiting.
  }
}

void NetClient::Goodbye() {
  if (!socket_.valid()) return;
  const std::string frame = EncodeFrame(FrameType::kGoodbye, "");
  (void)util::SendAll(socket_, frame.data(), frame.size(),
                      util::Deadline::AfterMillis(200.0));
  socket_.Close();
}

util::Status NetClient::SendRaw(std::string_view bytes) {
  if (!socket_.valid()) return util::Status::Unavailable("not connected");
  return util::SendAll(socket_, bytes.data(), bytes.size(),
                       util::Deadline::AfterMillis(config_.call_timeout_ms));
}

}  // namespace vkg::net
