#ifndef VKG_NET_FRAME_H_
#define VKG_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace vkg::net {

/// Length-prefixed binary framing (DESIGN.md §6i). One frame on the
/// wire, all fields little-endian:
///
///   offset  size  field
///        0     4  magic      0x57474B56 ("VKGW")
///        4     2  version    currently 1
///        6     2  type       FrameType
///        8     4  length     payload bytes; capped per connection
///       12   len  payload
///   12+len     8  checksum   FNV-1a over header + payload
///
/// The checksum trails the payload so both sides compute it in one
/// streaming pass (util::Fnv1a, the same primitive the persistence
/// formats use). Any flipped bit in header or payload surfaces as a
/// clean kDataLoss decode error — the connection is then closed, since
/// framing sync cannot be trusted after corruption.

inline constexpr uint32_t kFrameMagic = 0x57474B56;  // "VKGW"
inline constexpr uint16_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderSize = 12;
inline constexpr size_t kFrameChecksumSize = 8;
inline constexpr size_t kDefaultMaxPayload = 1u << 20;

/// Frame overhead beyond the payload.
inline constexpr size_t kFrameOverhead =
    kFrameHeaderSize + kFrameChecksumSize;

enum class FrameType : uint16_t {
  kRequest = 1,   // payload: EncodeRequest
  kResponse = 2,  // payload: EncodeResponse
  kError = 3,     // payload: EncodeWireError (connection-scoped)
  kPing = 4,      // empty payload; server answers kPong
  kPong = 5,      // empty payload
  kGoodbye = 6,   // empty payload; sender will close after flush
};

/// True for types this endpoint vocabulary defines (an unknown type is
/// a framing error — skipping it would desync a corrupted stream).
bool KnownFrameType(uint16_t type);

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Encodes one complete frame (header + payload + checksum).
std::string EncodeFrame(FrameType type, std::string_view payload);

/// Incremental frame parser: feed bytes as they arrive, pull complete
/// frames out. Designed hostile-first:
///   * the length field is validated against `max_payload` as soon as
///     the header is complete — an attacker-sized length is rejected
///     before a single payload byte is buffered;
///   * magic/version/type/checksum violations poison the decoder (every
///     later call reports the same error) because byte-stream sync is
///     unrecoverable after corruption — the connection must close;
///   * buffered bytes never exceed one frame plus one read chunk.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  /// Appends raw bytes from the transport.
  void Feed(std::string_view bytes);

  enum class Next : uint8_t {
    kFrame,     // *frame filled
    kNeedMore,  // no complete frame buffered yet
    kError,     // protocol violation; see error(); decoder is poisoned
  };

  /// Extracts the next complete frame, if any.
  Next Pull(Frame* frame);

  const util::Status& error() const { return error_; }
  bool poisoned() const { return !error_.ok(); }

  /// True while a frame is partially buffered — the state a slowloris
  /// client parks a connection in; the listener's read deadline bounds
  /// how long it may persist.
  bool mid_frame() const { return !buffer_.empty(); }
  size_t buffered_bytes() const { return buffer_.size(); }
  uint64_t frames_decoded() const { return frames_decoded_; }

 private:
  size_t max_payload_;
  std::string buffer_;
  util::Status error_;
  uint64_t frames_decoded_ = 0;
};

}  // namespace vkg::net

#endif  // VKG_NET_FRAME_H_
