#ifndef VKG_NET_LISTENER_H_
#define VKG_NET_LISTENER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "server/server.h"
#include "util/socket.h"
#include "util/thread_pool.h"

namespace vkg::net {

/// Shape of the TCP front end (DESIGN.md §6i). Defaults are sized for
/// loopback tests; production deployments raise the caps and timeouts.
struct NetServerConfig {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back with NetServer::port().
  uint16_t port = 0;
  /// Global connection cap. An accept past it is answered with one
  /// kError{kRejected, retry_after_ms} frame and closed — the network
  /// edge of the admission layer's Rejected{retry_after} contract.
  size_t max_connections = 256;
  /// Per-IP connection cap (0 = disabled). Same rejection shape.
  size_t max_connections_per_ip = 0;
  /// Frame payload cap enforced on the *header*, before any payload
  /// byte is buffered.
  size_t max_frame_bytes = kDefaultMaxPayload;
  /// Max requests per connection submitted but not yet answered;
  /// excess requests are rejected (kResourceExhausted + retry hint),
  /// not queued — one connection cannot monopolize the worker pool.
  size_t max_pipeline = 64;
  /// util::ThreadPool threads running submit + ticket-wait + encode.
  size_t io_threads = 2;
  /// No bytes at all for this long (and nothing in flight) closes the
  /// connection.
  double idle_timeout_ms = 60000.0;
  /// A partially received frame must complete within this window — the
  /// slowloris defense. Measured from the first byte of the partial
  /// frame, restarted per frame.
  double read_deadline_ms = 5000.0;
  /// Pending response bytes must drain within this window once the
  /// socket stops accepting them (a reader that never reads cannot pin
  /// buffer memory forever).
  double write_deadline_ms = 5000.0;
  /// Stop(): grace period for in-flight requests to finish and flush
  /// before remaining connections are force-closed.
  double drain_timeout_ms = 5000.0;
  /// retry_after_ms attached to connection-cap and pipeline-cap
  /// rejections (a fixed load-shedding hint, like queue-full's).
  double overload_retry_after_ms = 50.0;
  /// Test clock for timeout decisions (null = steady_clock::now). The
  /// event loop re-reads it every iteration, so tests advance a fake
  /// clock and observe deterministic idle/slowloris closes.
  std::function<std::chrono::steady_clock::time_point()> clock;
};

/// Exact counters for tests and the CLI report (the obs mirror is
/// PublishStats).
struct NetStats {
  uint64_t accepted = 0;
  uint64_t rejected_cap = 0;      // global connection cap
  uint64_t rejected_ip = 0;       // per-IP connection cap
  uint64_t open = 0;              // currently open connections
  uint64_t frames_rx = 0;
  uint64_t frames_tx = 0;
  uint64_t bytes_rx = 0;
  uint64_t bytes_tx = 0;
  uint64_t frame_errors = 0;      // malformed/corrupt frames
  uint64_t requests = 0;          // request frames dispatched
  uint64_t responses = 0;         // response frames queued
  uint64_t pipeline_rejected = 0; // over max_pipeline
  uint64_t idle_timeouts = 0;
  uint64_t read_timeouts = 0;     // slowloris closes
  uint64_t write_timeouts = 0;    // unread-response closes
  uint64_t io_errors = 0;         // read/write failures incl. EPIPE
  uint64_t force_closed = 0;      // drain timeout hit at Stop()
};

/// The TCP front end over a VkgServer: an accept loop plus
/// per-connection state machines on one event-loop thread, with
/// request execution (VkgServer::Submit + Ticket::Get + response
/// encoding) fanned out to a util::ThreadPool. Hostile-client-first:
/// every malformed input, stalled read, unread response, or cap
/// violation resolves to a clean error frame and/or close — never a
/// crash, a leak, or a stuck worker (tests/net_fuzz_test.cc,
/// tests/net_test.cc).
///
/// Lifecycle: Start() binds, spawns the loop, and serves until Stop()
/// — which stops accepting, lets in-flight requests finish (every
/// submitted ticket is waited on by a pool worker, so none is ever
/// abandoned), flushes and closes connections with a kGoodbye, and
/// force-closes whatever remains after drain_timeout_ms. Idempotent;
/// the destructor runs it too. The VkgServer must outlive the
/// NetServer and is not stopped by it.
class NetServer {
 public:
  static util::Result<std::unique_ptr<NetServer>> Start(
      server::VkgServer* server, const NetServerConfig& config);

  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Bound listening port (resolves config.port == 0).
  uint16_t port() const { return port_; }
  const NetServerConfig& config() const { return config_; }

  /// Graceful drain; blocks until the loop and every worker finished.
  void Stop();
  bool stopping() const {
    return stopping_.load(std::memory_order_relaxed);
  }

  NetStats Stats() const;

  /// Mirrors counters/gauges into the obs registry (vkg_net_*).
  void PublishStats() const;

 private:
  struct Connection;

  NetServer(server::VkgServer* server, const NetServerConfig& config);

  std::chrono::steady_clock::time_point Now() const {
    return config_.clock ? config_.clock()
                         : std::chrono::steady_clock::now();
  }

  void Loop();
  void AcceptPending();
  /// Reads available bytes and parses frames; true keeps the
  /// connection, false schedules it for close.
  bool HandleReadable(Connection& conn);
  bool HandleFrame(Connection& conn, Frame frame);
  void DispatchRequest(const std::shared_ptr<Connection>& conn,
                       std::string payload);
  /// Flushes as much of the outbox as the socket accepts.
  bool FlushWrites(Connection& conn);
  bool CheckTimeouts(Connection& conn,
                     std::chrono::steady_clock::time_point now);
  void QueueFrame(Connection& conn, FrameType type,
                  std::string_view payload);
  void CloseConnection(size_t index);
  void WakeLoop();

  server::VkgServer* server_;  // not owned
  NetServerConfig config_;
  util::Socket listener_;
  uint16_t port_ = 0;
  util::Socket wake_rx_, wake_tx_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::thread loop_;

  std::vector<std::shared_ptr<Connection>> connections_;
  std::map<std::string, size_t> per_ip_;
  uint64_t next_connection_id_ = 1;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> loop_done_{false};
  std::mutex stop_mu_;  // serializes Stop()
  bool stopped_ = false;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_cap_{0};
  std::atomic<uint64_t> rejected_ip_{0};
  std::atomic<uint64_t> frames_rx_{0};
  std::atomic<uint64_t> frames_tx_{0};
  std::atomic<uint64_t> bytes_rx_{0};
  std::atomic<uint64_t> bytes_tx_{0};
  std::atomic<uint64_t> frame_errors_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> responses_{0};
  std::atomic<uint64_t> pipeline_rejected_{0};
  std::atomic<uint64_t> idle_timeouts_{0};
  std::atomic<uint64_t> read_timeouts_{0};
  std::atomic<uint64_t> write_timeouts_{0};
  std::atomic<uint64_t> io_errors_{0};
  std::atomic<uint64_t> force_closed_{0};
  std::atomic<uint64_t> open_{0};
};

}  // namespace vkg::net

#endif  // VKG_NET_LISTENER_H_
