#include "net/listener.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "net/wire.h"
#include "obs/metrics.h"
#include "util/failpoint.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace vkg::net {

namespace {

using Clock = std::chrono::steady_clock;

double MillisBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

obs::Histogram& RttHistogram() {
  static obs::Histogram& hist =
      obs::MetricsRegistry::Global().GetHistogram("vkg_net_rtt_us");
  return hist;
}

}  // namespace

/// Per-connection state machine. The event loop owns everything except
/// `mu`/`pending`/`in_flight`/`closed`, which pool workers use to hand
/// finished responses back.
struct NetServer::Connection {
  uint64_t id = 0;
  util::Socket socket;
  std::string peer_ip;
  FrameDecoder decoder;

  // Worker-facing half.
  std::mutex mu;
  std::string pending;  // encoded frames queued by workers (guard: mu)
  std::atomic<size_t> in_flight{0};
  std::atomic<bool> closed{false};

  // Loop-owned half.
  std::string outbox;   // bytes being written to the socket
  bool input_dead = false;        // EOF / goodbye / poisoned decoder
  bool close_after_flush = false;
  bool has_partial = false;       // decoder is mid-frame
  bool write_blocked = false;     // socket refused outbox bytes
  Clock::time_point last_activity;
  Clock::time_point partial_since;
  Clock::time_point write_blocked_since;

  explicit Connection(Clock::time_point now, size_t max_payload)
      : decoder(max_payload), last_activity(now) {}

  /// Moves worker-queued bytes into the loop's outbox.
  void CollectPending() {
    std::lock_guard<std::mutex> lock(mu);
    if (!pending.empty()) {
      outbox.append(pending);
      pending.clear();
    }
  }

  bool FlushedAndIdle() {
    if (in_flight.load(std::memory_order_acquire) != 0) return false;
    // in_flight hits 0 only after the worker queued its response, so
    // collecting here observes every response of a drained connection.
    CollectPending();
    return outbox.empty();
  }
};

util::Result<std::unique_ptr<NetServer>> NetServer::Start(
    server::VkgServer* server, const NetServerConfig& config) {
  if (server == nullptr) {
    return util::Status::InvalidArgument("NetServer needs a VkgServer");
  }
  util::IgnoreSigPipe();
  std::unique_ptr<NetServer> net(new NetServer(server, config));

  VKG_ASSIGN_OR_RETURN(net->listener_,
                       util::ListenTcp(config.host, config.port));
  VKG_RETURN_IF_ERROR(util::SetNonBlocking(net->listener_));
  VKG_ASSIGN_OR_RETURN(net->port_, util::LocalPort(net->listener_));

  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    return util::Status::IoError(
        util::StrFormat("pipe: %s", strerror(errno)));
  }
  net->wake_rx_ = util::Socket(pipe_fds[0]);
  net->wake_tx_ = util::Socket(pipe_fds[1]);
  fcntl(net->wake_rx_.fd(), F_SETFL, O_NONBLOCK);
  fcntl(net->wake_tx_.fd(), F_SETFL, O_NONBLOCK);

  net->pool_ = std::make_unique<util::ThreadPool>(
      std::max<size_t>(1, config.io_threads));
  net->loop_ = std::thread([raw = net.get()] { raw->Loop(); });
  return net;
}

NetServer::NetServer(server::VkgServer* server,
                     const NetServerConfig& config)
    : server_(server), config_(config) {
  config_.max_connections = std::max<size_t>(1, config_.max_connections);
  config_.max_pipeline = std::max<size_t>(1, config_.max_pipeline);
}

NetServer::~NetServer() { Stop(); }

void NetServer::WakeLoop() {
  char byte = 1;
  ssize_t ignored = write(wake_tx_.fd(), &byte, 1);
  (void)ignored;  // a full pipe already wakes the loop
}

void NetServer::Stop() {
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (stopped_) return;
  stopping_.store(true, std::memory_order_relaxed);
  WakeLoop();
  if (loop_.joinable()) loop_.join();
  // The loop dispatched its last request before exiting; waiting on the
  // pool resolves every outstanding ticket (no Submit is ever
  // abandoned), then the pool joins.
  if (pool_ != nullptr) pool_->Wait();
  pool_.reset();
  stopped_ = true;
}

void NetServer::Loop() {
  bool draining = false;
  Clock::time_point drain_start{};
  std::vector<struct pollfd> fds;
  std::vector<size_t> fd_conn;  // pollfd index -> connections_ index

  for (;;) {
    if (!draining && stopping_.load(std::memory_order_relaxed)) {
      draining = true;
      drain_start = Now();
      listener_.Close();
      // Stop reading: in-flight requests finish and flush, new frames
      // are not taken. Connections close as they drain.
      for (auto& conn : connections_) conn->input_dead = true;
    }

    fds.clear();
    fd_conn.clear();
    if (listener_.valid()) {
      fds.push_back({listener_.fd(), POLLIN, 0});
    }
    fds.push_back({wake_rx_.fd(), POLLIN, 0});
    for (size_t i = 0; i < connections_.size(); ++i) {
      Connection& conn = *connections_[i];
      short events = 0;
      if (!conn.input_dead) events |= POLLIN;
      if (!conn.outbox.empty() || conn.write_blocked) events |= POLLOUT;
      if (events == 0) events = POLLIN;  // watch for hangup at least
      fd_conn.push_back(i);
      fds.push_back({conn.socket.fd(), events, 0});
    }

    // 10ms tick: timeouts consult the (possibly injected) clock every
    // iteration, so a fake-clock advance is noticed within one tick.
    (void)poll(fds.data(), fds.size(), 10);

    size_t fd_index = 0;
    if (listener_.valid()) {
      if ((fds[fd_index].revents & POLLIN) != 0) AcceptPending();
      ++fd_index;
    }
    if ((fds[fd_index].revents & POLLIN) != 0) {
      char drain[256];
      while (read(wake_rx_.fd(), drain, sizeof(drain)) > 0) {
      }
    }
    ++fd_index;

    const Clock::time_point now = Now();
    std::vector<size_t> to_close;
    for (size_t p = fd_index; p < fds.size(); ++p) {
      const size_t ci = fd_conn[p - fd_index];
      Connection& conn = *connections_[ci];
      bool keep = true;
      conn.CollectPending();
      if (keep && (fds[p].revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
          !conn.input_dead) {
        keep = HandleReadable(conn);
      }
      conn.CollectPending();
      if (keep && !conn.outbox.empty()) keep = FlushWrites(conn);
      if (keep) keep = CheckTimeouts(conn, now);
      if (keep && (conn.close_after_flush || conn.input_dead) &&
          conn.FlushedAndIdle()) {
        keep = false;
      }
      if (!keep) to_close.push_back(ci);
    }
    // Close from the back so indices stay valid.
    std::sort(to_close.rbegin(), to_close.rend());
    for (size_t ci : to_close) CloseConnection(ci);

    if (draining) {
      if (connections_.empty()) break;
      if (MillisBetween(drain_start, Now()) > config_.drain_timeout_ms) {
        force_closed_.fetch_add(connections_.size(),
                                std::memory_order_relaxed);
        while (!connections_.empty()) {
          CloseConnection(connections_.size() - 1);
        }
        break;
      }
    }
  }
}

void NetServer::AcceptPending() {
  for (;;) {
    std::string peer_ip;
    util::Result<util::Socket> accepted =
        util::Accept(listener_, &peer_ip);
    if (!accepted.ok()) return;  // queue drained (or transient)
    util::Socket socket = std::move(accepted).value();
    if (VKG_FAILPOINT("net.accept")) {
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      continue;  // injected accept fault: drop the connection
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);

    const bool over_global =
        connections_.size() >= config_.max_connections;
    const bool over_ip =
        config_.max_connections_per_ip > 0 &&
        per_ip_[peer_ip] >= config_.max_connections_per_ip;
    if (over_global || over_ip) {
      (over_global ? rejected_cap_ : rejected_ip_)
          .fetch_add(1, std::memory_order_relaxed);
      // The network edge of the admission layer: an explicit
      // Rejected{retry_after} frame, serialized before close.
      WireError error;
      error.code = WireErrorCode::kRejected;
      error.retry_after_ms = config_.overload_retry_after_ms;
      error.message = over_global ? "connection cap reached"
                                  : "per-IP connection cap reached";
      const std::string frame =
          EncodeFrame(FrameType::kError, EncodeWireError(error));
      (void)util::SendAll(socket, frame.data(), frame.size(),
                          util::Deadline::AfterMillis(100.0));
      continue;  // socket closes on scope exit
    }

    (void)util::SetNonBlocking(socket);
    (void)util::SetNoDelay(socket);
    auto conn =
        std::make_shared<Connection>(Now(), config_.max_frame_bytes);
    conn->id = next_connection_id_++;
    conn->socket = std::move(socket);
    conn->peer_ip = peer_ip;
    ++per_ip_[peer_ip];
    connections_.push_back(std::move(conn));
    open_.store(connections_.size(), std::memory_order_relaxed);
  }
}

bool NetServer::HandleReadable(Connection& conn) {
  char buf[16384];
  // Bounded reads per iteration so one firehose connection cannot
  // starve the others.
  for (int round = 0; round < 4; ++round) {
    if (VKG_FAILPOINT("net.read")) {
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    const ssize_t rc = recv(conn.socket.fd(), buf, sizeof(buf), 0);
    if (rc > 0) {
      bytes_rx_.fetch_add(static_cast<uint64_t>(rc),
                          std::memory_order_relaxed);
      conn.last_activity = Now();
      conn.decoder.Feed(std::string_view(buf, static_cast<size_t>(rc)));
      if (static_cast<size_t>(rc) < sizeof(buf)) break;
      continue;
    }
    if (rc == 0) {  // clean EOF: flush what is in flight, then close
      conn.input_dead = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    io_errors_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  Frame frame;
  for (;;) {
    const FrameDecoder::Next next = conn.decoder.Pull(&frame);
    if (next == FrameDecoder::Next::kFrame) {
      frames_rx_.fetch_add(1, std::memory_order_relaxed);
      if (!HandleFrame(conn, std::move(frame))) return false;
      continue;
    }
    if (next == FrameDecoder::Next::kError) {
      // Framing is unrecoverable: answer with the decode error and
      // close once it flushed.
      frame_errors_.fetch_add(1, std::memory_order_relaxed);
      WireError error;
      error.code = WireErrorCode::kMalformed;
      error.message = conn.decoder.error().message();
      QueueFrame(conn, FrameType::kError, EncodeWireError(error));
      conn.input_dead = true;
      conn.close_after_flush = true;
      break;
    }
    break;  // kNeedMore
  }

  const bool mid = conn.decoder.mid_frame() && !conn.decoder.poisoned();
  if (mid && !conn.has_partial) {
    conn.has_partial = true;
    conn.partial_since = Now();
  } else if (!mid) {
    conn.has_partial = false;
  }
  return true;
}

bool NetServer::HandleFrame(Connection& conn, Frame frame) {
  if (VKG_FAILPOINT("net.frame")) {
    frame_errors_.fetch_add(1, std::memory_order_relaxed);
    WireError error;
    error.code = WireErrorCode::kMalformed;
    error.message = "injected frame fault (net.frame)";
    QueueFrame(conn, FrameType::kError, EncodeWireError(error));
    conn.input_dead = true;
    conn.close_after_flush = true;
    return true;
  }
  switch (frame.type) {
    case FrameType::kPing:
      QueueFrame(conn, FrameType::kPong, "");
      return true;
    case FrameType::kGoodbye:
      // Client-initiated drain: no more requests will arrive; finish
      // what is in flight, flush, close.
      conn.input_dead = true;
      conn.close_after_flush = true;
      return true;
    case FrameType::kRequest:
      break;
    default: {
      // kResponse/kPong/kError are server-to-client vocabulary; a
      // client sending them is broken or hostile.
      frame_errors_.fetch_add(1, std::memory_order_relaxed);
      WireError error;
      error.code = WireErrorCode::kMalformed;
      error.message = "unexpected frame type from client";
      QueueFrame(conn, FrameType::kError, EncodeWireError(error));
      conn.input_dead = true;
      conn.close_after_flush = true;
      return true;
    }
  }

  if (stopping_.load(std::memory_order_relaxed)) {
    WireError error;
    error.code = WireErrorCode::kShuttingDown;
    error.message = "server draining";
    QueueFrame(conn, FrameType::kError, EncodeWireError(error));
    conn.input_dead = true;
    conn.close_after_flush = true;
    return true;
  }

  uint64_t request_id = 0;
  query::ServerRequest request;
  const util::Status decoded =
      DecodeRequest(frame.payload, &request_id, &request);
  if (!decoded.ok()) {
    frame_errors_.fetch_add(1, std::memory_order_relaxed);
    WireError error;
    error.code = WireErrorCode::kMalformed;
    error.message = decoded.message();
    QueueFrame(conn, FrameType::kError, EncodeWireError(error));
    conn.input_dead = true;
    conn.close_after_flush = true;
    return true;
  }

  if (conn.in_flight.load(std::memory_order_acquire) >=
      config_.max_pipeline) {
    // Per-request rejection, same shape the in-process admission layer
    // produces: the client sees ResourceExhausted + retry hint and the
    // connection stays usable.
    pipeline_rejected_.fetch_add(1, std::memory_order_relaxed);
    query::ServerResponse response;
    response.status = util::Status::ResourceExhausted(
        util::StrFormat("pipeline cap %zu reached",
                        config_.max_pipeline));
    response.meta.retry_after_ms = config_.overload_retry_after_ms;
    QueueFrame(conn, FrameType::kResponse,
               EncodeResponse(request_id, response, request.kind));
    return true;
  }

  conn.in_flight.fetch_add(1, std::memory_order_acq_rel);
  requests_.fetch_add(1, std::memory_order_relaxed);
  // shared_from_this-style handle: find our shared_ptr. Connections are
  // few; linear scan is fine on this path (one per request dispatch).
  for (const auto& shared : connections_) {
    if (shared.get() == &conn) {
      DispatchRequest(shared, frame.payload);
      return true;
    }
  }
  // Unreachable: conn is always a member of connections_.
  conn.in_flight.fetch_sub(1, std::memory_order_acq_rel);
  return true;
}

void NetServer::DispatchRequest(const std::shared_ptr<Connection>& conn,
                                std::string payload) {
  pool_->Submit([this, conn, payload = std::move(payload)] {
    util::WallTimer timer;
    uint64_t request_id = 0;
    query::ServerRequest request;
    // Already validated on the loop thread; re-decode here so the loop
    // does not hold a decoded copy per in-flight request.
    const util::Status decoded =
        DecodeRequest(payload, &request_id, &request);
    query::ServerResponse response;
    query::RequestKind kind = request.kind;
    if (decoded.ok()) {
      response = server_->Execute(std::move(request));
    } else {
      response.status = decoded;
    }
    RttHistogram().Observe(timer.ElapsedMicros());
    const std::string frame = EncodeFrame(
        FrameType::kResponse, EncodeResponse(request_id, response, kind));
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (!conn->closed.load(std::memory_order_relaxed)) {
        conn->pending.append(frame);
        responses_.fetch_add(1, std::memory_order_relaxed);
        frames_tx_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
    WakeLoop();
  });
}

void NetServer::QueueFrame(Connection& conn, FrameType type,
                           std::string_view payload) {
  conn.outbox.append(EncodeFrame(type, payload));
  frames_tx_.fetch_add(1, std::memory_order_relaxed);
}

bool NetServer::FlushWrites(Connection& conn) {
  if (VKG_FAILPOINT("net.write")) {
    io_errors_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  while (!conn.outbox.empty()) {
    const ssize_t rc = send(conn.socket.fd(), conn.outbox.data(),
                            conn.outbox.size(), MSG_NOSIGNAL);
    if (rc > 0) {
      bytes_tx_.fetch_add(static_cast<uint64_t>(rc),
                          std::memory_order_relaxed);
      conn.outbox.erase(0, static_cast<size_t>(rc));
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.write_blocked) {
        conn.write_blocked = true;
        conn.write_blocked_since = Now();
      }
      return true;  // wait for POLLOUT
    }
    if (rc < 0 && errno == EINTR) continue;
    // EPIPE/ECONNRESET and friends: the reader vanished mid-write. The
    // Status-shaped cousin of this surface lives in util::SendAll; here
    // the connection just closes.
    io_errors_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  conn.write_blocked = false;
  return true;
}

bool NetServer::CheckTimeouts(Connection& conn, Clock::time_point now) {
  if (conn.has_partial &&
      MillisBetween(conn.partial_since, now) > config_.read_deadline_ms) {
    // Slowloris: a frame begun but trickled. One best-effort error
    // frame, then close regardless of flush.
    read_timeouts_.fetch_add(1, std::memory_order_relaxed);
    WireError error;
    error.code = WireErrorCode::kIdle;
    error.message = "read deadline exceeded mid-frame";
    QueueFrame(conn, FrameType::kError, EncodeWireError(error));
    (void)FlushWrites(conn);
    return false;
  }
  if (conn.write_blocked &&
      MillisBetween(conn.write_blocked_since, now) >
          config_.write_deadline_ms) {
    // A reader that never reads cannot pin response memory forever.
    write_timeouts_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (config_.idle_timeout_ms > 0.0 && !conn.has_partial &&
      conn.in_flight.load(std::memory_order_acquire) == 0 &&
      conn.outbox.empty() &&
      MillisBetween(conn.last_activity, now) > config_.idle_timeout_ms) {
    idle_timeouts_.fetch_add(1, std::memory_order_relaxed);
    WireError error;
    error.code = WireErrorCode::kIdle;
    error.message = "idle timeout";
    QueueFrame(conn, FrameType::kError, EncodeWireError(error));
    (void)FlushWrites(conn);
    return false;
  }
  return true;
}

void NetServer::CloseConnection(size_t index) {
  std::shared_ptr<Connection> conn = connections_[index];
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->closed.store(true, std::memory_order_relaxed);
    conn->pending.clear();
  }
  conn->socket.Close();
  auto it = per_ip_.find(conn->peer_ip);
  if (it != per_ip_.end() && --it->second == 0) per_ip_.erase(it);
  connections_.erase(connections_.begin() +
                     static_cast<ptrdiff_t>(index));
  open_.store(connections_.size(), std::memory_order_relaxed);
}

NetStats NetServer::Stats() const {
  NetStats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.rejected_cap = rejected_cap_.load(std::memory_order_relaxed);
  stats.rejected_ip = rejected_ip_.load(std::memory_order_relaxed);
  stats.open = open_.load(std::memory_order_relaxed);
  stats.frames_rx = frames_rx_.load(std::memory_order_relaxed);
  stats.frames_tx = frames_tx_.load(std::memory_order_relaxed);
  stats.bytes_rx = bytes_rx_.load(std::memory_order_relaxed);
  stats.bytes_tx = bytes_tx_.load(std::memory_order_relaxed);
  stats.frame_errors = frame_errors_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.responses = responses_.load(std::memory_order_relaxed);
  stats.pipeline_rejected =
      pipeline_rejected_.load(std::memory_order_relaxed);
  stats.idle_timeouts = idle_timeouts_.load(std::memory_order_relaxed);
  stats.read_timeouts = read_timeouts_.load(std::memory_order_relaxed);
  stats.write_timeouts = write_timeouts_.load(std::memory_order_relaxed);
  stats.io_errors = io_errors_.load(std::memory_order_relaxed);
  stats.force_closed = force_closed_.load(std::memory_order_relaxed);
  return stats;
}

void NetServer::PublishStats() const {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const NetStats stats = Stats();
  reg.GetGauge("vkg_net_connections_open")
      .Set(static_cast<double>(stats.open));
  reg.GetGauge("vkg_net_connections_accepted")
      .Set(static_cast<double>(stats.accepted));
  reg.GetGauge("vkg_net_connections_rejected")
      .Set(static_cast<double>(stats.rejected_cap + stats.rejected_ip));
  reg.GetGauge("vkg_net_frames_rx").Set(static_cast<double>(stats.frames_rx));
  reg.GetGauge("vkg_net_frames_tx").Set(static_cast<double>(stats.frames_tx));
  reg.GetGauge("vkg_net_bytes_rx").Set(static_cast<double>(stats.bytes_rx));
  reg.GetGauge("vkg_net_bytes_tx").Set(static_cast<double>(stats.bytes_tx));
  reg.GetGauge("vkg_net_frame_errors")
      .Set(static_cast<double>(stats.frame_errors));
  reg.GetGauge("vkg_net_requests").Set(static_cast<double>(stats.requests));
  reg.GetGauge("vkg_net_responses")
      .Set(static_cast<double>(stats.responses));
  reg.GetGauge("vkg_net_timeouts_idle")
      .Set(static_cast<double>(stats.idle_timeouts));
  reg.GetGauge("vkg_net_timeouts_read")
      .Set(static_cast<double>(stats.read_timeouts));
  reg.GetGauge("vkg_net_timeouts_write")
      .Set(static_cast<double>(stats.write_timeouts));
  reg.GetGauge("vkg_net_io_errors")
      .Set(static_cast<double>(stats.io_errors));
  reg.GetGauge("vkg_net_force_closed")
      .Set(static_cast<double>(stats.force_closed));
}

}  // namespace vkg::net
