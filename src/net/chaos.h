#ifndef VKG_NET_CHAOS_H_
#define VKG_NET_CHAOS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/listener.h"
#include "query/request.h"
#include "server/server.h"

namespace vkg::net {

/// Socket-level chaos campaign (DESIGN.md §6i): the server/chaos.h
/// storm, rebuilt on real loopback TCP connections. It starts a
/// NetServer over the given VkgServer, arms the net.* failpoint sites
/// (and the in-process server.* sites underneath) with seeded
/// randomized schedules, and drives:
///
///   1. an oracle pass (in-process, fault-free) for differential
///      correctness of exact responses;
///   2. a multi-client storm over real sockets, clients reconnecting
///      whenever an injected fault or error frame kills their
///      connection;
///   3. a deterministic hostile phase: connections sending garbage,
///      truncated frames, and oversized lengths must each be answered
///      or closed — and the server must keep serving well-formed
///      clients afterwards;
///   4. a drain phase: a final burst is in flight when Stop() lands;
///      every outstanding call must resolve (response, shutting-down
///      error, or clean close — never a hang), and the VkgServer
///      underneath must still answer in-process probes.
///
/// Library code so tests/net_chaos_test.cc and vkg_chaos_cli --net run
/// the identical campaign.

/// The net.* failpoint sites the campaign arms (the server.* subset is
/// taken from server::AllChaosSites()).
std::vector<std::string> AllNetChaosSites();

struct NetChaosConfig {
  uint64_t seed = 42;
  /// Total storm calls, split across clients and rounds.
  size_t requests = 2000;
  size_t clients = 4;
  size_t rounds = 4;
  double deadline_fraction = 0.3;
  double deadline_ms = 50.0;
  double max_delay_ms = 3.0;
  /// Hostile connections driven in phase 3.
  size_t hostile_connections = 16;
  /// Also arm the in-process server.* sites during the storm.
  bool arm_server_sites = true;
  bool hostile_phase = true;
  bool drain_phase = true;
  /// NetServer shape for the campaign.
  NetServerConfig net;
};

struct NetChaosReport {
  size_t submitted = 0;
  size_t resolved = 0;  // == submitted when no call hung
  size_t ok = 0;
  size_t rejected = 0;      // admission/pipeline/connection caps
  size_t failed = 0;        // injected faults surfaced as errors
  size_t deadline = 0;
  size_t unavailable = 0;   // drain, closes, transport failures
  size_t transport_errors = 0;  // connection died mid-call
  size_t reconnects = 0;
  size_t mismatches = 0;
  size_t hostile_sent = 0;
  size_t hostile_handled = 0;  // error frame or clean close observed
  bool post_hostile_alive = false;
  bool drain_clean = false;
  NetStats net;  // listener counters at campaign end

  bool Passed(const NetChaosConfig& config) const;
  std::string ToString() const;
};

/// Runs the campaign. Starts (and always stops) its own NetServer on an
/// ephemeral loopback port; the VkgServer is left running. Failpoints
/// are cleared before and after.
NetChaosReport RunNetChaosCampaign(
    server::VkgServer& server,
    const std::vector<query::ServerRequest>& slots,
    const NetChaosConfig& config);

}  // namespace vkg::net

#endif  // VKG_NET_CHAOS_H_
