#include "net/wire.h"

#include <cmath>
#include <cstring>

#include "util/string_util.h"

namespace vkg::net {

namespace {

util::Status Malformed(const std::string& what) {
  return util::Status::DataLoss("malformed payload: " + what);
}

bool FiniteOrFail(WireReader& reader, double v, const char* what) {
  if (std::isfinite(v)) return true;
  reader.Fail(util::StrFormat("non-finite %s", what));
  return false;
}

void PutQuery(WireWriter& w, const data::Query& query) {
  w.PutU32(query.anchor);
  w.PutU32(query.relation);
  w.PutU8(static_cast<uint8_t>(query.direction));
}

bool TakeQuery(WireReader& r, data::Query* query) {
  query->anchor = r.U32();
  query->relation = r.U32();
  const uint8_t direction = r.U8();
  if (!r.ok()) return false;
  if (direction > 1) {
    r.Fail("direction out of range");
    return false;
  }
  query->direction = static_cast<kg::Direction>(direction);
  return true;
}

void PutQuality(WireWriter& w, const query::ResultQuality& quality) {
  w.PutU8(quality.exact ? 1 : 0);
  w.PutU8(static_cast<uint8_t>(quality.stop_reason));
  w.PutF64(quality.certified_radius);
}

bool TakeQuality(WireReader& r, query::ResultQuality* quality) {
  const uint8_t exact = r.U8();
  const uint8_t reason = r.U8();
  const double radius = r.F64();
  if (!r.ok()) return false;
  if (exact > 1 || reason > static_cast<uint8_t>(
                                util::StopReason::kScratchBudget)) {
    r.Fail("quality fields out of range");
    return false;
  }
  if (!FiniteOrFail(r, radius, "certified_radius")) return false;
  quality->exact = exact != 0;
  quality->stop_reason = static_cast<util::StopReason>(reason);
  quality->certified_radius = radius;
  return true;
}

}  // namespace

void WireWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  PutBytes(s.data(), s.size());
}

void WireWriter::PutBytes(const void* data, size_t n) {
  out_.append(static_cast<const char*>(data), n);
}

bool WireReader::Take(void* out, size_t n, const char* what) {
  if (!status_.ok()) return false;
  if (data_.size() - pos_ < n) {
    status_ = Malformed(util::StrFormat("truncated %s", what));
    memset(out, 0, n);
    return false;
  }
  memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return true;
}

uint8_t WireReader::U8() {
  uint8_t v = 0;
  Take(&v, sizeof(v), "u8");
  return v;
}
uint16_t WireReader::U16() {
  uint16_t v = 0;
  Take(&v, sizeof(v), "u16");
  return v;
}
uint32_t WireReader::U32() {
  uint32_t v = 0;
  Take(&v, sizeof(v), "u32");
  return v;
}
uint64_t WireReader::U64() {
  uint64_t v = 0;
  Take(&v, sizeof(v), "u64");
  return v;
}
double WireReader::F64() {
  double v = 0.0;
  Take(&v, sizeof(v), "f64");
  return v;
}

std::string WireReader::String(size_t max_len) {
  const uint32_t len = U32();
  if (!status_.ok()) return {};
  if (len > max_len) {
    status_ = Malformed(util::StrFormat("string length %u > cap %zu",
                                        len, max_len));
    return {};
  }
  if (data_.size() - pos_ < len) {
    status_ = Malformed("string length beyond payload");
    return {};
  }
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

void WireReader::Fail(const std::string& what) {
  if (status_.ok()) status_ = Malformed(what);
}

std::string EncodeRequest(uint64_t request_id,
                          const query::ServerRequest& request) {
  WireWriter w;
  w.PutU64(request_id);
  w.PutString(request.client_id);
  w.PutU8(static_cast<uint8_t>(request.kind));
  PutQuery(w, request.query);
  w.PutU64(request.k);
  PutQuery(w, request.aggregate.query);
  w.PutU8(static_cast<uint8_t>(request.aggregate.kind));
  w.PutString(request.aggregate.attribute);
  w.PutF64(request.aggregate.prob_threshold);
  w.PutU64(request.aggregate.sample_size);
  w.PutF64(request.deadline_ms);
  w.PutU64(request.budget.max_points);
  w.PutU64(request.budget.max_cracked_nodes);
  w.PutU64(request.budget.max_scratch_bytes);
  w.PutU32(static_cast<uint32_t>(request.priority));
  w.PutU8(request.bypass_cache ? 1 : 0);
  return w.Take();
}

util::Status DecodeRequest(std::string_view payload, uint64_t* request_id,
                           query::ServerRequest* request) {
  WireReader r(payload);
  *request_id = r.U64();
  request->client_id = r.String(kMaxClientIdLen);
  const uint8_t kind = r.U8();
  if (r.ok() && kind > 1) r.Fail("request kind out of range");
  if (!TakeQuery(r, &request->query)) return r.status();
  request->k = r.U64();
  if (!TakeQuery(r, &request->aggregate.query)) return r.status();
  const uint8_t agg_kind = r.U8();
  if (r.ok() &&
      agg_kind > static_cast<uint8_t>(query::AggKind::kMin)) {
    r.Fail("aggregate kind out of range");
  }
  request->aggregate.attribute = r.String(kMaxAttributeLen);
  request->aggregate.prob_threshold = r.F64();
  request->aggregate.sample_size = r.U64();
  request->deadline_ms = r.F64();
  request->budget.max_points = r.U64();
  request->budget.max_cracked_nodes = r.U64();
  request->budget.max_scratch_bytes = r.U64();
  request->priority = static_cast<int32_t>(r.U32());
  const uint8_t bypass = r.U8();
  if (!r.ok()) return r.status();
  if (bypass > 1) return Malformed("bypass_cache out of range");
  if (!std::isfinite(request->aggregate.prob_threshold) ||
      !std::isfinite(request->deadline_ms)) {
    return Malformed("non-finite request field");
  }
  if (!r.AtEnd()) return Malformed("trailing bytes after request");
  request->kind = static_cast<query::RequestKind>(kind);
  request->aggregate.kind = static_cast<query::AggKind>(agg_kind);
  request->bypass_cache = bypass != 0;
  return util::Status::OK();
}

namespace {

constexpr uint8_t kMetaCacheHit = 1u << 0;
constexpr uint8_t kMetaCoalesced = 1u << 1;
constexpr uint8_t kMetaExpiredInQueue = 1u << 2;
constexpr uint8_t kMetaDegradedByPressure = 1u << 3;

}  // namespace

std::string EncodeResponse(uint64_t request_id,
                           const query::ServerResponse& response,
                           query::RequestKind kind) {
  WireWriter w;
  w.PutU64(request_id);
  w.PutU8(static_cast<uint8_t>(response.status.code()));
  w.PutString(response.status.message().size() > kMaxStatusMessageLen
                  ? response.status.message().substr(0, kMaxStatusMessageLen)
                  : response.status.message());
  w.PutU8(static_cast<uint8_t>(kind));
  w.PutU32(static_cast<uint32_t>(response.meta.shard));
  uint8_t flags = 0;
  if (response.meta.cache_hit) flags |= kMetaCacheHit;
  if (response.meta.coalesced) flags |= kMetaCoalesced;
  if (response.meta.expired_in_queue) flags |= kMetaExpiredInQueue;
  if (response.meta.degraded_by_pressure) flags |= kMetaDegradedByPressure;
  w.PutU8(flags);
  w.PutU64(response.meta.generation);
  w.PutF64(response.meta.retry_after_ms);
  if (!response.ok()) return w.Take();
  if (kind == query::RequestKind::kTopK) {
    w.PutU32(static_cast<uint32_t>(response.topk.hits.size()));
    for (const query::TopKHit& hit : response.topk.hits) {
      w.PutU32(hit.entity);
      w.PutF64(hit.distance);
      w.PutF64(hit.probability);
    }
    w.PutU64(response.topk.candidates_examined);
    PutQuality(w, response.topk.quality);
  } else {
    w.PutF64(response.aggregate.value);
    w.PutU64(response.aggregate.accessed);
    w.PutF64(response.aggregate.estimated_total);
    w.PutF64(response.aggregate.prob_mass_accessed);
    w.PutF64(response.aggregate.prob_mass_estimated);
    PutQuality(w, response.aggregate.quality);
  }
  return w.Take();
}

util::Status DecodeResponse(std::string_view payload, uint64_t* request_id,
                            query::ServerResponse* response) {
  WireReader r(payload);
  *request_id = r.U64();
  const uint8_t code = r.U8();
  std::string message = r.String(kMaxStatusMessageLen);
  const uint8_t kind = r.U8();
  const uint32_t shard = r.U32();
  const uint8_t flags = r.U8();
  const uint64_t generation = r.U64();
  const double retry_after_ms = r.F64();
  if (!r.ok()) return r.status();
  if (code > static_cast<uint8_t>(util::StatusCode::kUnavailable)) {
    return Malformed("status code out of range");
  }
  if (kind > 1) return Malformed("response kind out of range");
  if (flags > (kMetaCacheHit | kMetaCoalesced | kMetaExpiredInQueue |
               kMetaDegradedByPressure)) {
    return Malformed("meta flags out of range");
  }
  if (!std::isfinite(retry_after_ms)) {
    return Malformed("non-finite retry_after_ms");
  }
  response->status = util::Status(static_cast<util::StatusCode>(code),
                                  std::move(message));
  response->meta.shard = shard;
  response->meta.cache_hit = (flags & kMetaCacheHit) != 0;
  response->meta.coalesced = (flags & kMetaCoalesced) != 0;
  response->meta.expired_in_queue = (flags & kMetaExpiredInQueue) != 0;
  response->meta.degraded_by_pressure =
      (flags & kMetaDegradedByPressure) != 0;
  response->meta.generation = generation;
  response->meta.retry_after_ms = retry_after_ms;
  if (!response->ok()) {
    if (!r.AtEnd()) return Malformed("trailing bytes after error response");
    return util::Status::OK();
  }
  if (kind == static_cast<uint8_t>(query::RequestKind::kTopK)) {
    const uint32_t hits = r.U32();
    if (!r.ok()) return r.status();
    // 20 bytes per hit on the wire: a lying count field is caught here,
    // before any allocation sized by it.
    if (hits > kMaxWireHits || hits > r.remaining() / 20) {
      return Malformed("hit count beyond payload");
    }
    response->topk.hits.resize(hits);
    for (query::TopKHit& hit : response->topk.hits) {
      hit.entity = r.U32();
      hit.distance = r.F64();
      hit.probability = r.F64();
      if (!r.ok()) return r.status();
      if (!std::isfinite(hit.distance) || !std::isfinite(hit.probability)) {
        return Malformed("non-finite hit field");
      }
    }
    response->topk.candidates_examined = r.U64();
    if (!TakeQuality(r, &response->topk.quality)) return r.status();
  } else {
    response->aggregate.value = r.F64();
    response->aggregate.accessed = r.U64();
    response->aggregate.estimated_total = r.F64();
    response->aggregate.prob_mass_accessed = r.F64();
    response->aggregate.prob_mass_estimated = r.F64();
    if (!r.ok()) return r.status();
    if (!std::isfinite(response->aggregate.value)) {
      return Malformed("non-finite aggregate value");
    }
    if (!TakeQuality(r, &response->aggregate.quality)) return r.status();
  }
  if (!r.AtEnd()) return Malformed("trailing bytes after response");
  return util::Status::OK();
}

std::string EncodeWireError(const WireError& error) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(error.code));
  w.PutF64(error.retry_after_ms);
  w.PutString(error.message.size() > kMaxStatusMessageLen
                  ? error.message.substr(0, kMaxStatusMessageLen)
                  : error.message);
  return w.Take();
}

util::Status DecodeWireError(std::string_view payload, WireError* error) {
  WireReader r(payload);
  const uint32_t code = r.U32();
  const double retry_after_ms = r.F64();
  std::string message = r.String(kMaxStatusMessageLen);
  if (!r.ok()) return r.status();
  if (code < static_cast<uint32_t>(WireErrorCode::kMalformed) ||
      code > static_cast<uint32_t>(WireErrorCode::kInternal)) {
    return Malformed("wire error code out of range");
  }
  if (!std::isfinite(retry_after_ms)) {
    return Malformed("non-finite retry_after_ms");
  }
  if (!r.AtEnd()) return Malformed("trailing bytes after wire error");
  error->code = static_cast<WireErrorCode>(code);
  error->retry_after_ms = retry_after_ms;
  error->message = std::move(message);
  return util::Status::OK();
}

}  // namespace vkg::net
