#include "core/options.h"

namespace vkg::core {

VkgOptions VkgOptions::Normalized() const {
  VkgOptions out = *this;
  size_t choices = index::SplitChoicesFor(method);
  if (choices > 0) out.rtree.split_choices = choices;
  return out;
}

}  // namespace vkg::core
