#include "core/virtual_graph.h"

#include <algorithm>
#include <utility>

#include "embedding/vector_ops.h"
#include "query/batch_executor.h"
#include "query/prob_model.h"
#include "util/string_util.h"

namespace vkg::core {

namespace {

// Arms a per-query context with the resilience limits configured in
// VkgOptions. The deadline is taken fresh here so it covers exactly one
// query, not the lifetime of the options object.
void ApplyQueryLimits(const VkgOptions& options,
                      query::QueryContext& ctx) {
  if (options.query_deadline_ms > 0.0) {
    ctx.control().set_deadline(
        util::Deadline::AfterMillis(options.query_deadline_ms));
  }
  ctx.control().set_budget(options.query_budget);
}

// Maps VkgOptions limits onto a batch: the budget stays per query, the
// deadline becomes the batch-wide cutoff (see BatchOptions).
query::BatchOptions MakeBatchOptions(const VkgOptions& options) {
  query::BatchOptions batch;
  if (options.query_deadline_ms > 0.0) {
    batch.deadline = util::Deadline::AfterMillis(options.query_deadline_ms);
  }
  batch.budget = options.query_budget;
  return batch;
}

}  // namespace

util::Result<std::unique_ptr<VirtualKnowledgeGraph>>
VirtualKnowledgeGraph::BuildWithEmbeddings(const kg::KnowledgeGraph* graph,
                                           embedding::EmbeddingStore store,
                                           const VkgOptions& options) {
  if (graph == nullptr) {
    return util::Status::InvalidArgument("graph must not be null");
  }
  if (store.num_entities() != graph->num_entities() ||
      store.num_relations() != graph->num_relations()) {
    // Anything else means the store's dense ids cannot match the
    // graph's, and predictions would point at phantom entities.
    return util::Status::InvalidArgument(util::StrFormat(
        "embedding store covers %zu entities / %zu relations but the graph "
        "has %zu / %zu (ids must correspond 1:1)",
        store.num_entities(), store.num_relations(), graph->num_entities(),
        graph->num_relations()));
  }
  if (options.alpha < 1 || options.alpha > index::kMaxDim) {
    return util::Status::InvalidArgument(
        util::StrFormat("alpha must be in [1, %zu]", index::kMaxDim));
  }
  if (options.eps <= 0) {
    return util::Status::InvalidArgument("eps must be positive");
  }
  auto vkg = std::unique_ptr<VirtualKnowledgeGraph>(new VirtualKnowledgeGraph(
      graph, std::move(store), options.Normalized()));
  VKG_RETURN_IF_ERROR(vkg->Initialize());
  return vkg;
}

util::Result<std::unique_ptr<VirtualKnowledgeGraph>>
VirtualKnowledgeGraph::BuildWithTraining(const kg::KnowledgeGraph* graph,
                                         const VkgOptions& options) {
  if (graph == nullptr) {
    return util::Status::InvalidArgument("graph must not be null");
  }
  embedding::Trainer trainer(*graph, options.trainer);
  VKG_ASSIGN_OR_RETURN(embedding::EmbeddingStore store, trainer.Train());
  return BuildWithEmbeddings(graph, std::move(store), options);
}

VirtualKnowledgeGraph::VirtualKnowledgeGraph(const kg::KnowledgeGraph* graph,
                                             embedding::EmbeddingStore store,
                                             VkgOptions options)
    : graph_(graph), store_(std::move(store)), options_(std::move(options)) {}

util::Status VirtualKnowledgeGraph::Initialize() {
  using index::MethodKind;

  // Embeddings are frozen from here on (training/updates rebuild the
  // indices via Initialize too): give the batch kernels the padded SoA
  // fast path. Any later mutable Entity() access drops the mirror.
  store_.BuildPaddedMirror();
  jl_ = std::make_unique<transform::JlTransform>(store_.dim(), options_.alpha,
                                                 options_.jl_seed);
  points_s2_ = std::make_unique<index::PointSet>(jl_->ApplyToEntities(store_),
                                                 options_.alpha);
  rtree_ = std::make_unique<index::CrackingRTree>(points_s2_.get(),
                                                  options_.rtree);
  if (options_.method == MethodKind::kBulkRTree) {
    rtree_->BuildFull();
  }

  switch (options_.method) {
    case MethodKind::kNoIndex:
      topk_engine_ =
          std::make_unique<query::LinearTopKEngine>(graph_, &store_);
      break;
    case MethodKind::kPhTree: {
      // Index the high-dimensional S1 vectors directly.
      std::vector<float> raw(store_.num_entities() * store_.dim());
      for (size_t e = 0; e < store_.num_entities(); ++e) {
        std::span<const float> v =
            store_.Entity(static_cast<kg::EntityId>(e));
        std::copy(v.begin(), v.end(), raw.begin() + e * store_.dim());
      }
      phtree_ = std::make_unique<index::PhTree>(raw, store_.num_entities(),
                                                store_.dim());
      topk_engine_ = std::make_unique<query::PhTreeTopKEngine>(
          graph_, &store_, phtree_.get());
      break;
    }
    case MethodKind::kH2Alsh:
      topk_engine_ = std::make_unique<query::H2AlshTopKEngine>(
          graph_, &store_, options_.h2alsh);
      break;
    case MethodKind::kBulkRTree:
      topk_engine_ = std::make_unique<query::RTreeTopKEngine>(
          graph_, &store_, jl_.get(), rtree_.get(), options_.eps,
          /*crack_after_query=*/false, index::MethodName(options_.method));
      break;
    default:  // cracking variants
      topk_engine_ = std::make_unique<query::RTreeTopKEngine>(
          graph_, &store_, jl_.get(), rtree_.get(), options_.eps,
          /*crack_after_query=*/true, index::MethodName(options_.method));
      break;
  }

  aggregate_engine_ = std::make_unique<query::AggregateEngine>(
      graph_, &store_, jl_.get(), rtree_.get(), options_.eps,
      /*crack_after_query=*/index::UsesRTree(options_.method) &&
          options_.method != MethodKind::kBulkRTree);
  return util::Status::OK();
}

query::TopKResult VirtualKnowledgeGraph::TopKTails(kg::EntityId h,
                                                   kg::RelationId r,
                                                   size_t k) {
  return TopK({h, r, kg::Direction::kTail}, k);
}

query::TopKResult VirtualKnowledgeGraph::TopKHeads(kg::EntityId t,
                                                   kg::RelationId r,
                                                   size_t k) {
  return TopK({t, r, kg::Direction::kHead}, k);
}

query::TopKResult VirtualKnowledgeGraph::TopK(const data::Query& query,
                                              size_t k, obs::Trace* trace) {
  query::QueryContext ctx;
  ApplyQueryLimits(options_, ctx);
  ctx.set_trace(trace);
  query::TopKResult result = topk_engine_->TopKQuery(query, k, ctx);
  if (overlay_.empty()) return result;

  // Merge overlay entities (whose S2 index position may be stale) by
  // exact S1 distance; existing hits keep their (already exact)
  // distances. Probabilities are re-calibrated afterwards.
  auto skip = query::MakeSkipFn(*graph_, query);
  std::vector<float> q =
      store_.QueryCenter(query.anchor, query.relation, query.direction);
  std::vector<std::pair<double, kg::EntityId>> merged;
  merged.reserve(result.hits.size() + overlay_.size());
  for (const auto& hit : result.hits) {
    merged.emplace_back(hit.distance, hit.entity);
  }
  for (kg::EntityId e : overlay_) {
    if (skip(e)) continue;
    merged.emplace_back(embedding::L2Distance(store_.Entity(e), q), e);
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end(),
                           [](const auto& a, const auto& b) {
                             return a.second == b.second;
                           }),
               merged.end());
  if (merged.size() > k) merged.resize(k);

  query::TopKResult out;
  out.candidates_examined = result.candidates_examined + overlay_.size();
  out.quality = result.quality;  // overlay entities are always exact
  if (!merged.empty()) {
    query::ProbabilityModel pm(merged[0].first);
    for (const auto& [dist, e] : merged) {
      out.hits.push_back({e, dist, pm.ProbabilityAt(dist)});
    }
  }
  return out;
}

util::ThreadPool* VirtualKnowledgeGraph::QueryPool() {
  if (options_.query_threads < 2) return nullptr;
  if (query_pool_ == nullptr) {
    query_pool_ = std::make_unique<util::ThreadPool>(options_.query_threads);
  }
  return query_pool_.get();
}

std::vector<util::Result<query::TopKResult>>
VirtualKnowledgeGraph::BatchTopK(std::span<const data::Query> queries,
                                 size_t k) {
  return query::BatchTopK(*topk_engine_, queries, k, QueryPool(),
                          MakeBatchOptions(options_));
}

std::vector<util::Result<query::AggregateResult>>
VirtualKnowledgeGraph::BatchAggregate(
    std::span<const query::AggregateSpec> specs) {
  return query::BatchAggregate(*aggregate_engine_, specs, QueryPool(),
                               MakeBatchOptions(options_));
}

util::Result<std::vector<query::TopKHit>>
VirtualKnowledgeGraph::Neighborhood(const data::Query& query,
                                    double prob_threshold,
                                    size_t max_results) {
  if (prob_threshold <= 0.0 || prob_threshold > 1.0) {
    return util::Status::InvalidArgument(
        "prob_threshold must be in (0, 1]");
  }
  // d_min from a top-1 probe (overlay-aware through TopK).
  query::TopKResult top1 = TopK(query, 1);
  if (top1.hits.empty()) return std::vector<query::TopKHit>{};
  query::ProbabilityModel pm(top1.hits[0].distance);
  const double r_tau = pm.RadiusForThreshold(prob_threshold);

  auto skip = query::MakeSkipFn(*graph_, query);
  std::vector<float> q_s1 =
      store_.QueryCenter(query.anchor, query.relation, query.direction);
  index::Point q_s2 = index::Point::FromSpan(jl_->Apply(q_s1));
  index::Rect region = index::Rect::BoundingBoxOfBall(
      q_s2, r_tau * (1.0 + options_.eps));

  std::vector<query::TopKHit> hits;
  auto consider = [&](kg::EntityId e) {
    if (skip(e)) return;
    double dist = embedding::L2Distance(store_.Entity(e), q_s1);
    if (dist > r_tau) return;
    hits.push_back({e, dist, pm.ProbabilityAt(dist)});
  };
  rtree_->Search(region, consider);
  for (kg::EntityId e : overlay_) consider(e);

  std::sort(hits.begin(), hits.end(),
            [](const query::TopKHit& a, const query::TopKHit& b) {
              return a.distance < b.distance;
            });
  hits.erase(std::unique(hits.begin(), hits.end(),
                         [](const query::TopKHit& a,
                            const query::TopKHit& b) {
                           return a.entity == b.entity;
                         }),
             hits.end());
  if (max_results > 0 && hits.size() > max_results) {
    hits.resize(max_results);
  }
  if (index::UsesRTree(options_.method) &&
      options_.method != index::MethodKind::kBulkRTree) {
    rtree_->Crack(region);
  }
  return hits;
}

std::vector<kg::PredictedEdge> VirtualKnowledgeGraph::MaterializeTopEdges(
    std::span<const kg::EntityId> heads, kg::RelationId relation,
    size_t k_per_head) {
  std::vector<kg::PredictedEdge> edges;
  edges.reserve(heads.size() * k_per_head);
  for (kg::EntityId h : heads) {
    query::TopKResult result = TopKTails(h, relation, k_per_head);
    for (const auto& hit : result.hits) {
      kg::PredictedEdge edge;
      edge.triple = {h, relation, hit.entity};
      edge.probability = hit.probability;
      edges.push_back(edge);
    }
  }
  return edges;
}

util::Status VirtualKnowledgeGraph::UpdateEntityEmbedding(
    kg::EntityId e, std::span<const float> vector) {
  if (e >= store_.num_entities()) {
    return util::Status::OutOfRange("unknown entity id");
  }
  if (vector.size() != store_.dim()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "vector size %zu != embedding dim %zu", vector.size(),
        store_.dim()));
  }
  std::span<float> dst = store_.Entity(e);
  std::copy(vector.begin(), vector.end(), dst.begin());
  if (std::find(overlay_.begin(), overlay_.end(), e) == overlay_.end()) {
    overlay_.push_back(e);
  }
  return util::Status::OK();
}

util::Status VirtualKnowledgeGraph::CompactUpdates() {
  overlay_.clear();
  return Initialize();
}

util::Result<query::TopKResult> VirtualKnowledgeGraph::TopKByName(
    std::string_view anchor, std::string_view relation,
    kg::Direction direction, size_t k, obs::Trace* trace) {
  VKG_ASSIGN_OR_RETURN(kg::EntityId a,
                       graph_->entity_names().Require(anchor));
  VKG_ASSIGN_OR_RETURN(kg::RelationId r,
                       graph_->relation_names().Require(relation));
  return TopK({a, r, direction}, k, trace);
}

query::TopKGuarantee VirtualKnowledgeGraph::GuaranteeFor(
    const query::TopKResult& result) const {
  std::vector<double> distances;
  distances.reserve(result.hits.size());
  for (const auto& hit : result.hits) distances.push_back(hit.distance);
  return query::ComputeTopKGuarantee(distances, options_.eps,
                                     options_.alpha);
}

util::Result<query::AggregateResult> VirtualKnowledgeGraph::Aggregate(
    const query::AggregateSpec& spec, obs::Trace* trace) {
  query::QueryContext ctx;
  ApplyQueryLimits(options_, ctx);
  ctx.set_trace(trace);
  return aggregate_engine_->Aggregate(spec, ctx);
}

util::Result<query::AggregateResult> VirtualKnowledgeGraph::ExactAggregate(
    const query::AggregateSpec& spec) {
  return aggregate_engine_->ExactAggregate(spec);
}

util::Status VirtualKnowledgeGraph::SaveIndex(
    const std::string& path) const {
  return rtree_->Save(path);
}

util::Status VirtualKnowledgeGraph::LoadIndex(const std::string& path) {
  VKG_ASSIGN_OR_RETURN(std::unique_ptr<index::CrackingRTree> loaded,
                       index::CrackingRTree::Load(path, points_s2_.get()));
  rtree_ = std::move(loaded);
  // Rebind the engines that hold the tree pointer.
  using index::MethodKind;
  if (index::UsesRTree(options_.method)) {
    topk_engine_ = std::make_unique<query::RTreeTopKEngine>(
        graph_, &store_, jl_.get(), rtree_.get(), options_.eps,
        /*crack_after_query=*/options_.method != MethodKind::kBulkRTree,
        index::MethodName(options_.method));
  }
  aggregate_engine_ = std::make_unique<query::AggregateEngine>(
      graph_, &store_, jl_.get(), rtree_.get(), options_.eps,
      index::UsesRTree(options_.method) &&
          options_.method != MethodKind::kBulkRTree);
  return util::Status::OK();
}

double VirtualKnowledgeGraph::PredictProbability(kg::EntityId h,
                                                 kg::RelationId r,
                                                 kg::EntityId t) {
  if (graph_->HasEdge(h, r, t)) return 1.0;
  std::vector<float> q = store_.QueryCenter(h, r, kg::Direction::kTail);
  query::TopKResult top1 = TopK({h, r, kg::Direction::kTail}, 1);
  if (top1.hits.empty()) return 0.0;
  query::ProbabilityModel pm(top1.hits[0].distance);
  double dist = embedding::L2Distance(store_.Entity(t), q);
  return pm.ProbabilityAt(dist);
}

}  // namespace vkg::core
