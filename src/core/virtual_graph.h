#ifndef VKG_CORE_VIRTUAL_GRAPH_H_
#define VKG_CORE_VIRTUAL_GRAPH_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/options.h"
#include "embedding/store.h"
#include "index/cracking_rtree.h"
#include "index/phtree.h"
#include "kg/graph.h"
#include "query/aggregate_engine.h"
#include "query/topk_bounds.h"
#include "query/topk_engine.h"
#include "transform/jl_transform.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace vkg::core {

/// The virtual knowledge graph (Definition 1): a knowledge graph G
/// extended with the predicted edges E' induced by an embedding
/// algorithm A, queryable through the online cracking index.
///
/// Typical usage:
///
///   kg::KnowledgeGraph g = ...;                 // load or generate
///   VkgOptions options;                         // defaults are sensible
///   auto vkg = VirtualKnowledgeGraph::BuildWithTraining(&g, options);
///   auto top = vkg->TopKTails(h, likes, 5);     // predicted edges
///   auto avg = vkg->Aggregate(spec);            // expected aggregates
///
/// The referenced KnowledgeGraph must outlive this object.
///
/// Thread safety: the query path is safe for concurrent use — top-k and
/// aggregate queries incrementally build the index, but readers
/// traverse immutable epoch-published tree versions lock-free and the
/// cracking R-tree serializes that mutation on a writer-side mutex
/// (DESIGN.md §6f). BatchTopK / BatchAggregate below exploit this by
/// fanning a query span over options.query_threads workers. Dynamic
/// updates (UpdateEntityEmbedding / CompactUpdates / LoadIndex) swap
/// engine state and must still be externally synchronized against
/// in-flight queries.
class VirtualKnowledgeGraph {
 public:
  /// Builds from precomputed S1 embeddings (the paper's setting: the
  /// embedding algorithm runs offline). Fails when the store does not
  /// cover the graph's entities/relations or alpha is out of range.
  static util::Result<std::unique_ptr<VirtualKnowledgeGraph>>
  BuildWithEmbeddings(const kg::KnowledgeGraph* graph,
                      embedding::EmbeddingStore store,
                      const VkgOptions& options);

  /// Trains TransE on the graph's edges first (options.trainer), then
  /// builds. Convenient for examples and small graphs.
  static util::Result<std::unique_ptr<VirtualKnowledgeGraph>>
  BuildWithTraining(const kg::KnowledgeGraph* graph,
                    const VkgOptions& options);

  // --- Top-k entity queries (Section V-A) ---------------------------------

  /// Top-k most likely tails t for (h, r, t) not already in E.
  query::TopKResult TopKTails(kg::EntityId h, kg::RelationId r, size_t k);
  /// Top-k most likely heads h for (h, r, t) not already in E.
  query::TopKResult TopKHeads(kg::EntityId t, kg::RelationId r, size_t k);
  /// Generic form. `trace` (optional) collects the query's phase spans
  /// — probe, seed, frontier, crack — for `vkg_cli --trace` style
  /// inspection (DESIGN.md §6e); null keeps the untraced hot path.
  query::TopKResult TopK(const data::Query& query, size_t k,
                         obs::Trace* trace = nullptr);

  /// Name-based convenience (NotFound for unknown names).
  util::Result<query::TopKResult> TopKByName(std::string_view anchor,
                                             std::string_view relation,
                                             kg::Direction direction,
                                             size_t k,
                                             obs::Trace* trace = nullptr);

  /// Answers queries[i] with k results each, fanned over the pool sized
  /// by options.query_threads (sequentially when < 2). Per-slot
  /// statuses. options.query_budget applies per query;
  /// options.query_deadline_ms becomes one batch-wide wall-clock cutoff
  /// (BatchOptions semantics — late queries degrade, never fail).
  /// Note: the batch path queries the index directly — entities with
  /// pending embedding updates (pending_updates() > 0) are merged only
  /// by the single-query TopK() form.
  std::vector<util::Result<query::TopKResult>> BatchTopK(
      std::span<const data::Query> queries, size_t k);

  /// Batch form of Aggregate(), fanned the same way.
  std::vector<util::Result<query::AggregateResult>> BatchAggregate(
      std::span<const query::AggregateSpec> specs);

  /// Theorem 2 guarantee for a returned result.
  query::TopKGuarantee GuaranteeFor(const query::TopKResult& result) const;

  // --- Aggregate queries (Section V-B) ------------------------------------

  /// Approximate aggregate via the index; see AggregateEngine. `trace`
  /// as in TopK().
  util::Result<query::AggregateResult> Aggregate(
      const query::AggregateSpec& spec, obs::Trace* trace = nullptr);

  /// Exact (no-index) aggregate: the accuracy baseline.
  util::Result<query::AggregateResult> ExactAggregate(
      const query::AggregateSpec& spec);

  /// All entities whose predicted-edge probability for `query` is at
  /// least `prob_threshold`, ascending by distance (the "ball" of
  /// Section V-B as a first-class query). `max_results` == 0 means no
  /// cap. Served by the R-tree regardless of the top-k method.
  util::Result<std::vector<query::TopKHit>> Neighborhood(
      const data::Query& query, double prob_threshold,
      size_t max_results = 0);

  /// Materializes the top-k predicted edges of one relationship type for
  /// every head entity in `heads` (Definition 1's remark: edges of E'
  /// are never stored, "only the highest probability ones are retrieved
  /// on demand" — this is that retrieval in bulk, e.g. to precompute a
  /// recommendation table). Results are grouped by head, in input order.
  std::vector<kg::PredictedEdge> MaterializeTopEdges(
      std::span<const kg::EntityId> heads, kg::RelationId relation,
      size_t k_per_head);

  // --- Dynamic updates (paper §VIII, future work) ---------------------------
  //
  // Local updates to the knowledge graph change embeddings locally. New
  // *facts* need no index work at all: edge membership is read from the
  // caller-owned KnowledgeGraph, so adding edges there immediately
  // affects the E'-only skip semantics. Refreshed *embedding vectors*
  // are absorbed through a small overlay: the entity's stale S2 point
  // stays in the index (harmless — exact S1 distances are always
  // recomputed), while the overlay is scanned exactly by every top-k
  // query so the entity is also found at its new location. Call
  // CompactUpdates() to fold the overlay back into a fresh index once
  // it grows. Aggregate queries reflect refreshed vectors' exact
  // distances immediately but re-localize them only after compaction.

  /// Replaces the S1 embedding of `e` (size must equal dim). The update
  /// is visible to top-k queries immediately via the overlay.
  util::Status UpdateEntityEmbedding(kg::EntityId e,
                                     std::span<const float> vector);

  /// Number of entities currently in the overlay.
  size_t pending_updates() const { return overlay_.size(); }

  /// Rebuilds the transform target points and the index from the current
  /// embeddings and clears the overlay. The new cracking index is empty
  /// and re-cracks on demand.
  util::Status CompactUpdates();

  // --- Point predictions ----------------------------------------------------

  /// Probability of the virtual edge (h, r, t) per the distance
  /// calibration of Section V-B (1 for the closest entity, inversely
  /// proportional to distance otherwise). Existing edges return 1.
  double PredictProbability(kg::EntityId h, kg::RelationId r,
                            kg::EntityId t);

  // --- Index persistence ------------------------------------------------------

  /// Persists the (possibly cracked) R-tree index, so a warmed index can
  /// be reloaded instead of re-cracking (Section VI's "fire off the
  /// first query before the real online queries come").
  util::Status SaveIndex(const std::string& path) const;

  /// Replaces the current R-tree with one previously saved over the same
  /// embeddings/options and rebinds the query engines to it.
  util::Status LoadIndex(const std::string& path);

  // --- Introspection --------------------------------------------------------

  const kg::KnowledgeGraph& graph() const { return *graph_; }
  const embedding::EmbeddingStore& embeddings() const { return store_; }
  const transform::JlTransform& jl() const { return *jl_; }
  /// The transformed S2 point set the index is built over. Shared by the
  /// query server's worker shards: each shard builds its *own*
  /// CrackingRTree over this one point set (points are immutable after
  /// Initialize; CompactUpdates() rebuilds them and must be externally
  /// synchronized against anything holding this reference — the server
  /// keeps the VKG handle alive via shared ownership and never compacts
  /// while serving).
  const index::PointSet& points_s2() const { return *points_s2_; }
  index::IndexStats IndexStats() const { return rtree_->Stats(); }
  const VkgOptions& options() const { return options_; }
  const index::CrackingRTree& rtree() const { return *rtree_; }

 private:
  VirtualKnowledgeGraph(const kg::KnowledgeGraph* graph,
                        embedding::EmbeddingStore store, VkgOptions options);

  util::Status Initialize();

  /// The lazily constructed batch-query pool; nullptr when
  /// options_.query_threads < 2 (sequential batches).
  util::ThreadPool* QueryPool();

  const kg::KnowledgeGraph* graph_;
  embedding::EmbeddingStore store_;
  VkgOptions options_;

  std::unique_ptr<transform::JlTransform> jl_;
  std::unique_ptr<index::PointSet> points_s2_;
  std::unique_ptr<index::CrackingRTree> rtree_;
  std::unique_ptr<index::PhTree> phtree_;  // only for kPhTree
  std::unique_ptr<query::TopKEngine> topk_engine_;
  std::unique_ptr<query::AggregateEngine> aggregate_engine_;
  std::unique_ptr<util::ThreadPool> query_pool_;
  /// Entities whose embedding changed since the last compaction.
  std::vector<kg::EntityId> overlay_;
};

}  // namespace vkg::core

#endif  // VKG_CORE_VIRTUAL_GRAPH_H_
