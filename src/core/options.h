#ifndef VKG_CORE_OPTIONS_H_
#define VKG_CORE_OPTIONS_H_

#include <cstdint>

#include "embedding/trainer.h"
#include "index/factory.h"
#include "index/h2alsh.h"
#include "index/rtree_node.h"
#include "util/deadline.h"

namespace vkg::core {

/// Configuration of a VirtualKnowledgeGraph.
struct VkgOptions {
  /// Query-processing method (Section VI legend). Aggregate queries are
  /// served by the S2 R-tree regardless of the top-k method.
  index::MethodKind method = index::MethodKind::kCracking;

  /// alpha: dimensionality of the transformed index space S2 (3 or 6 in
  /// the paper). Must be in [1, index::kMaxDim].
  size_t alpha = 3;

  /// eps: query-region expansion factor (1 + eps) of Algorithm 3,
  /// trading recall (Theorem 2) against work (Theorem 3).
  double eps = 1.0;

  /// Seed of the Gaussian JL projection matrix.
  uint64_t jl_seed = 123;

  /// R-tree knobs (leaf capacity N, fanout M, beta, split choices k).
  /// split_choices is overridden from `method` for the kCrackingK kinds.
  index::RTreeConfig rtree;

  /// H2-ALSH knobs (used when method == kH2Alsh).
  index::H2AlshConfig h2alsh;

  /// TransE hyperparameters (used by BuildWithTraining).
  embedding::TrainerConfig trainer;

  /// Per-query wall-clock deadline in milliseconds; 0 disables it. An
  /// expired deadline degrades the answer (best-so-far hits, ResultQuality
  /// marked) instead of failing the query.
  double query_deadline_ms = 0.0;

  /// Per-query resource limits (points examined, nodes cracked, scratch
  /// bytes); zero fields are unlimited.
  util::ResourceBudget query_budget;

  /// Worker threads for batch queries (BatchTopK / BatchAggregate).
  /// 0 or 1 serves batches sequentially on the calling thread; >= 2
  /// lazily spins up a util::ThreadPool of that size. Safe with
  /// cracking methods: the index serializes cracks internally
  /// (DESIGN.md §6d).
  size_t query_threads = 0;

  /// Returns options with `rtree.split_choices` made consistent with
  /// `method`.
  VkgOptions Normalized() const;
};

}  // namespace vkg::core

#endif  // VKG_CORE_OPTIONS_H_
