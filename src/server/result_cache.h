#ifndef VKG_SERVER_RESULT_CACHE_H_
#define VKG_SERVER_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <optional>

#include "query/request.h"
#include "query/topk_engine.h"
#include "util/lru_cache.h"

namespace vkg::server {

/// One shard's segment of the server's result cache: a bounded LRU of
/// exact top-k results, each stamped with the crack generation of the
/// owning shard's tree it was computed against (DESIGN.md §6g).
///
/// Invalidation contract: an entry is served only while its stamp
/// equals the tree's *current* crack generation. A crack publication
/// bumps the generation, so every entry stamped earlier becomes
/// unservable at that instant — Lookup() treats it as a miss and
/// erases it (lazy), and InvalidateStale() sweeps a whole segment
/// (eager, called by the shard right after it observes a bump). Only
/// entries of the shard whose tree published are touched: segments are
/// per-shard, so "evict exactly the stale entries" is structural.
///
/// Only *exact* results (quality.exact, no stop reason) are stored:
/// degraded answers depend on the requester's deadline/budget and must
/// never be replayed to a request with laxer limits. Cached payloads
/// are returned by value, bit-identical to the computation that stored
/// them.
class ResultCache {
 public:
  struct Entry {
    query::TopKResult result;
    uint64_t generation = 0;
  };

  /// `max_bytes` == 0 disables the cache entirely (Lookup always
  /// misses without counting, Store drops).
  ResultCache(size_t max_bytes, size_t max_entries);

  bool enabled() const { return enabled_; }

  /// The entry under `key` if present AND stamped `current_generation`;
  /// a stale entry is erased and counted as an invalidation + miss.
  std::optional<Entry> Lookup(const query::QueryKey& key,
                              uint64_t current_generation);

  /// Stores an exact result stamped `generation`. Degraded results are
  /// ignored (see class comment).
  void Store(const query::QueryKey& key, const query::TopKResult& result,
             uint64_t generation);

  /// Erases every entry whose stamp differs from `current_generation`.
  /// Returns the number evicted (counted as invalidations).
  size_t InvalidateStale(uint64_t current_generation);

  /// Re-bounds this segment's byte budget and evicts cold entries until
  /// it holds — the memory-pressure shrink/restore path (DESIGN.md
  /// §6h). A disabled cache stays disabled. Returns entries evicted.
  size_t SetByteBudget(size_t max_bytes);

  void Clear();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t stores = 0;
    uint64_t invalidated = 0;  // generation-stamp evictions (lazy+eager)
    uint64_t evictions = 0;    // capacity-driven LRU evictions
    size_t entries = 0;
    size_t bytes = 0;
  };
  Stats stats() const;

  /// Approximate heap cost of caching `result` (charged to the LRU's
  /// byte bound).
  static size_t EntryBytes(const query::TopKResult& result);

 private:
  bool enabled_;
  util::LruCache<query::QueryKey, Entry, query::QueryKeyHash> lru_;
  // Cache-semantics counters, distinct from the raw LRU's: a stale
  // entry is a *miss* here even though the LRU found the key.
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> invalidated_{0};
  std::atomic<uint64_t> stores_{0};
};

}  // namespace vkg::server

#endif  // VKG_SERVER_RESULT_CACHE_H_
