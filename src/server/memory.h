#ifndef VKG_SERVER_MEMORY_H_
#define VKG_SERVER_MEMORY_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string_view>

namespace vkg::server {

/// Server memory-pressure ladder (DESIGN.md §6h). Numeric values are
/// stable — exported as the vkg_server_memory_pressure gauge. Each rung
/// adds a degradation on top of the previous one:
///   kNormal    — nothing
///   kElevated  — result-cache segments shrink to a fraction of their
///                configured bytes (reversible: bounds restore at Normal)
///   kDegraded  — queries without an explicit budget are forced into
///                budgeted mode (bounded points ⇒ bounded scratch), so
///                answers degrade per the paper's contract instead of
///                allocations growing
///   kShedding  — lowest-priority requests are rejected outright with a
///                retry_after hint
enum class PressureLevel : int {
  kNormal = 0,
  kElevated = 1,
  kDegraded = 2,
  kShedding = 3,
};

std::string_view PressureLevelName(PressureLevel level);

struct MemoryBudgetConfig {
  /// Total bytes the server may attribute to caches + in-flight work.
  /// 0 disables pressure tracking (level pinned at kNormal).
  size_t budget_bytes = 0;
  /// usage/budget fractions at which each rung engages.
  double elevated_fraction = 0.70;
  double degraded_fraction = 0.85;
  double shedding_fraction = 0.95;
  /// Hysteresis: to step *down* a rung, usage must fall this far below
  /// the rung's entry fraction (prevents flapping at a boundary).
  double hysteresis_fraction = 0.05;
};

/// Tracks usage against the budget and maps it to a PressureLevel with
/// hysteresis. The server owns one instance, feeds it measured usage
/// (cache bytes + queue-depth estimate) after every request, and applies
/// the level's degradations. Thread-safe.
class MemoryBudget {
 public:
  explicit MemoryBudget(const MemoryBudgetConfig& config);

  /// Feeds a usage measurement; returns the (possibly new) level.
  PressureLevel Update(size_t usage_bytes);

  /// Test hook: a pinned usage value that overrides what Update() is
  /// fed, so tests walk the ladder without allocating gigabytes.
  /// nullopt clears the override.
  void SetUsageOverride(std::optional<size_t> usage_bytes);

  PressureLevel level() const;

  struct Stats {
    PressureLevel level = PressureLevel::kNormal;
    size_t last_usage_bytes = 0;
    uint64_t escalations = 0;    // transitions to a higher rung
    uint64_t deescalations = 0;  // transitions to a lower rung
  };
  Stats stats() const;

 private:
  PressureLevel LevelForLocked(double fraction) const;
  double EntryFraction(PressureLevel level) const;

  const MemoryBudgetConfig config_;

  mutable std::mutex mu_;
  PressureLevel level_ = PressureLevel::kNormal;
  std::optional<size_t> override_;
  size_t last_usage_ = 0;
  uint64_t escalations_ = 0;
  uint64_t deescalations_ = 0;
};

}  // namespace vkg::server

#endif  // VKG_SERVER_MEMORY_H_
