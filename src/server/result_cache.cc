#include "server/result_cache.h"

namespace vkg::server {

ResultCache::ResultCache(size_t max_bytes, size_t max_entries)
    : enabled_(max_bytes > 0),
      lru_(max_entries, enabled_ ? max_bytes : 1) {}

std::optional<ResultCache::Entry> ResultCache::Lookup(
    const query::QueryKey& key, uint64_t current_generation) {
  if (!enabled_) return std::nullopt;
  std::optional<Entry> entry = lru_.Get(key);
  if (!entry.has_value()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  if (entry->generation != current_generation) {
    // Stale under the invalidation contract: a publication on this
    // shard's tree happened after the entry was stamped. Never serve
    // it; evict so the slot is reusable immediately.
    lru_.Erase(key);
    invalidated_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return entry;
}

void ResultCache::Store(const query::QueryKey& key,
                        const query::TopKResult& result,
                        uint64_t generation) {
  if (!enabled_) return;
  if (!result.quality.exact) return;  // never replay degraded answers
  lru_.Put(key, Entry{result, generation}, EntryBytes(result));
  stores_.fetch_add(1, std::memory_order_relaxed);
}

size_t ResultCache::InvalidateStale(uint64_t current_generation) {
  if (!enabled_) return 0;
  const size_t removed =
      lru_.EraseIf([current_generation](const query::QueryKey&,
                                        const Entry& entry) {
        return entry.generation != current_generation;
      });
  invalidated_.fetch_add(removed, std::memory_order_relaxed);
  return removed;
}

size_t ResultCache::SetByteBudget(size_t max_bytes) {
  if (!enabled_) return 0;
  // Keep the segment bounded even when asked for 0: a shrink-to-zero
  // becomes "evict everything, stay enabled" rather than unbounding.
  return lru_.SetMaxBytes(max_bytes > 0 ? max_bytes : 1);
}

void ResultCache::Clear() { lru_.Clear(); }

ResultCache::Stats ResultCache::stats() const {
  util::LruCacheStats lru = lru_.stats();
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.invalidated = invalidated_.load(std::memory_order_relaxed);
  s.evictions = lru.evictions;
  s.entries = lru_.size();
  s.bytes = lru_.bytes();
  return s;
}

size_t ResultCache::EntryBytes(const query::TopKResult& result) {
  // Key + list/map node overhead, plus the hit vector's heap block.
  constexpr size_t kFixed =
      sizeof(query::QueryKey) + sizeof(Entry) + 96;
  return kFixed + result.hits.capacity() * sizeof(query::TopKHit);
}

}  // namespace vkg::server
