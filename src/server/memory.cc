#include "server/memory.h"

namespace vkg::server {

std::string_view PressureLevelName(PressureLevel level) {
  switch (level) {
    case PressureLevel::kNormal:
      return "normal";
    case PressureLevel::kElevated:
      return "elevated";
    case PressureLevel::kDegraded:
      return "degraded";
    case PressureLevel::kShedding:
      return "shedding";
  }
  return "unknown";
}

MemoryBudget::MemoryBudget(const MemoryBudgetConfig& config)
    : config_(config) {}

double MemoryBudget::EntryFraction(PressureLevel level) const {
  switch (level) {
    case PressureLevel::kElevated:
      return config_.elevated_fraction;
    case PressureLevel::kDegraded:
      return config_.degraded_fraction;
    case PressureLevel::kShedding:
      return config_.shedding_fraction;
    case PressureLevel::kNormal:
      break;
  }
  return 0.0;
}

PressureLevel MemoryBudget::LevelForLocked(double fraction) const {
  if (fraction >= config_.shedding_fraction) return PressureLevel::kShedding;
  if (fraction >= config_.degraded_fraction) return PressureLevel::kDegraded;
  if (fraction >= config_.elevated_fraction) return PressureLevel::kElevated;
  return PressureLevel::kNormal;
}

PressureLevel MemoryBudget::Update(size_t usage_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (override_.has_value()) usage_bytes = *override_;
  last_usage_ = usage_bytes;
  if (config_.budget_bytes == 0) return level_;
  double fraction = static_cast<double>(usage_bytes) /
                    static_cast<double>(config_.budget_bytes);
  PressureLevel candidate = LevelForLocked(fraction);
  if (candidate > level_) {
    ++escalations_;
    level_ = candidate;
  } else if (candidate < level_ &&
             fraction <
                 EntryFraction(level_) - config_.hysteresis_fraction) {
    ++deescalations_;
    level_ = candidate;
  }
  return level_;
}

void MemoryBudget::SetUsageOverride(std::optional<size_t> usage_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  override_ = usage_bytes;
}

PressureLevel MemoryBudget::level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return level_;
}

MemoryBudget::Stats MemoryBudget::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.level = level_;
  s.last_usage_bytes = last_usage_;
  s.escalations = escalations_;
  s.deescalations = deescalations_;
  return s;
}

}  // namespace vkg::server
