#ifndef VKG_SERVER_SERVER_H_
#define VKG_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "core/virtual_graph.h"
#include "query/request.h"
#include "server/admission.h"
#include "server/health.h"
#include "server/memory.h"
#include "server/result_cache.h"
#include "server/shard.h"
#include "util/deadline.h"
#include "util/status.h"

namespace vkg::server {

/// Configuration of a VkgServer (DESIGN.md §6g).
struct ServerConfig {
  /// Worker shards. Requests route by hash(anchor, relation), so one
  /// (h, r) slot always lands on the same shard — its cracked regions,
  /// cache entries and in-flight computations are all local.
  size_t shards = 2;
  /// Worker threads per shard (each shard owns its pool).
  size_t threads_per_shard = 1;
  /// Max requests admitted-but-unfinished per shard; past it requests
  /// are rejected with a retry hint instead of queueing unboundedly.
  /// 0 = unbounded.
  size_t queue_capacity = 1024;
  /// Total result-cache budget in bytes, split evenly across shard
  /// segments. 0 disables the cache.
  size_t cache_bytes = 8u << 20;
  /// Optional per-shard entry bound on top of the byte bound (0 = byte
  /// bound only).
  size_t cache_entries = 0;
  /// Per-client admission rate (tokens/second); <= 0 disables rate
  /// limiting. Every request costs one token.
  double qps_limit = 0.0;
  /// Token-bucket burst capacity; <= 0 defaults to max(qps_limit, 1).
  double burst = 0.0;
  /// Retry hint attached to overload (queue-full) rejections.
  double overload_retry_ms = 10.0;
  /// Default per-request resilience limits (overridable per request).
  double default_deadline_ms = 0.0;
  util::ResourceBudget default_budget;
  /// Per-shard circuit-breaker thresholds (DESIGN.md §6h).
  BreakerConfig breaker;
  /// Memory-pressure ladder; budget_bytes == 0 disables tracking (and
  /// its per-submit accounting cost) entirely.
  MemoryBudgetConfig memory;
  /// Fraction of each cache segment's byte bound kept at PressureLevel
  /// kElevated and above (restored in full at kNormal).
  double pressure_cache_keep = 0.5;
  /// Budget forced onto otherwise-unlimited queries at kDegraded+.
  /// Left unlimited, a 4096-point budget is applied.
  util::ResourceBudget pressure_budget;
  /// Estimated bytes of in-flight state per queued request, charged
  /// against memory.budget_bytes alongside cache residency.
  size_t pressure_request_bytes = 64u << 10;
};

/// Point-in-time serving statistics (exact, unlike the sharded obs
/// counters these are single atomics — test- and gate-friendly).
struct ServerStats {
  uint64_t requests = 0;
  uint64_t admitted = 0;
  uint64_t rejected_rate = 0;      // admission-control rejections
  uint64_t rejected_overload = 0;  // shard-queue-full rejections
  uint64_t rejected_breaker = 0;   // circuit-breaker fast-fails
  uint64_t rejected_shed = 0;      // memory-pressure shedding
  uint64_t rejected_shutdown = 0;  // submitted after Stop()
  uint64_t invalid = 0;            // failed validation
  uint64_t coalesced = 0;          // attached to an in-flight duplicate
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_invalidated = 0;  // generation-stamp evictions
  uint64_t computed_topk = 0;      // actual engine computations
  uint64_t computed_aggregate = 0;
  /// Requests whose deadline expired while still queued: failed with
  /// kDeadlineExceeded, never handed to an engine (DESIGN.md §6h).
  uint64_t expired_in_queue = 0;
  /// Coalesced followers whose own deadline expired before the shared
  /// computation resolved (the leader still finishes and populates the
  /// cache).
  uint64_t expired_waiting = 0;
  /// Requests forced into budgeted mode by memory pressure.
  uint64_t pressure_degraded = 0;

  struct ShardView {
    size_t shard = 0;
    size_t depth = 0;
    size_t peak_depth = 0;
    size_t in_flight = 0;
    uint64_t generation = 0;
    ResultCache::Stats cache;
    CircuitBreaker::Stats breaker;
  };
  std::vector<ShardView> shards;
  MemoryBudget::Stats memory;
};

/// The long-running, in-process query front end over a
/// VirtualKnowledgeGraph (DESIGN.md §6g): converts the library into a
/// service. A request travels
///
///   Submit -> shutdown check -> admission (token bucket per client)
///          -> memory pressure (shed lowest priority at kShedding)
///          -> route (hash(anchor, relation) -> shard) -> validate
///          -> backpressure (bounded shard depth)
///          -> result cache (generation-checked; hits bypass the
///             breaker — an Open shard still serves cached results)
///          -> circuit breaker (Open shards fast-fail compute-bound
///             work, DESIGN.md §6h)
///          -> coalesce (attach to identical in-flight computation)
///          -> shard worker pool -> queue-expiry check -> engine
///             compute (absolute deadline stamped at admission)
///             -> cache store -> breaker outcome
///
/// and every early exit (rejection, cache hit, validation error)
/// resolves the returned Ticket immediately. All submission-side steps
/// run on the caller's thread; only the actual computation runs on the
/// owning shard's pool. Safe for concurrent Submit/Execute from any
/// number of threads.
///
/// The server holds shared ownership of the VKG; callers must not run
/// CompactUpdates / LoadIndex on it while the server is serving (the
/// shards' engines read its points and embeddings lock-free).
class VkgServer {
 public:
  static util::Result<std::unique_ptr<VkgServer>> Create(
      std::shared_ptr<core::VirtualKnowledgeGraph> vkg,
      const ServerConfig& config);

  ~VkgServer();
  VkgServer(const VkgServer&) = delete;
  VkgServer& operator=(const VkgServer&) = delete;

  /// Handle to one submitted request. Get() blocks until the response
  /// is available (immediately for rejections, cache hits, and
  /// validation errors) and may be called once per ticket from any
  /// thread; requesters coalesced onto a shared computation each get
  /// their own copy with their own serving metadata.
  class Ticket {
   public:
    Ticket() = default;
    /// For coalesced followers with a finite deadline, Get() waits at
    /// most until that deadline: a follower inherits the leader's
    /// result only if its own deadline still permits, and otherwise
    /// resolves to kDeadlineExceeded while the leader finishes (and
    /// populates the cache) on its own time.
    query::ServerResponse Get();

   private:
    friend class VkgServer;
    std::shared_future<query::ServerResponse> future_;
    size_t shard_ = 0;
    bool coalesced_ = false;
    bool patch_meta_ = false;
    util::Deadline deadline_;  // bounds Get() for coalesced followers
    /// Owned by the server's Stats block; shared so an expired wait can
    /// be counted even if the server object is gone by then.
    std::shared_ptr<std::atomic<uint64_t>> expired_waiting_;
  };

  /// Submits one request (non-blocking apart from admission/cache/
  /// coalescing bookkeeping; the `server.shard_dispatch` failpoint's
  /// delay action stalls here).
  Ticket Submit(query::ServerRequest request);

  /// Synchronous convenience form: Submit + Get.
  query::ServerResponse Execute(query::ServerRequest request);

  /// Shard owning `query`'s (anchor, relation) slot.
  size_t ShardOf(const data::Query& query) const;
  size_t num_shards() const { return shards_.size(); }

  /// Crack generation of one shard's tree (cache-invalidation stamp).
  uint64_t ShardGeneration(size_t shard) const;

  /// The cache/coalescing key `request` computes under (tests, benches).
  query::QueryKey MakeKey(const query::ServerRequest& request) const;

  /// Blocks until every enqueued computation has finished.
  void Drain();

  /// Graceful shutdown: rejects new submissions with kUnavailable,
  /// resolves every queued/coalesced ticket (queued work past this
  /// point fails fast with kUnavailable instead of computing), and
  /// returns once all shard pools are idle. Idempotent; also run by the
  /// destructor, so no ticket future is ever abandoned.
  void Stop();
  bool stopping() const {
    return stopping_.load(std::memory_order_relaxed);
  }

  /// Current rung of the memory-pressure ladder (DESIGN.md §6h).
  PressureLevel memory_pressure() const { return memory_budget_.level(); }
  /// The pressure tracker itself (tests pin usage via
  /// SetUsageOverride; the next Submit applies the resulting level).
  MemoryBudget& memory_budget() { return memory_budget_; }
  /// One shard's breaker (tests and diagnostics).
  CircuitBreaker& shard_breaker(size_t shard) {
    return shards_[shard]->breaker();
  }

  ServerStats Stats() const;

  /// Mirrors per-shard depth/generation/cache gauges into the global
  /// obs registry (vkg_server_*; cold path, call before scraping).
  void PublishStats() const;

  const ServerConfig& config() const { return config_; }
  const core::VirtualKnowledgeGraph& vkg() const { return *vkg_; }

 private:
  VkgServer(std::shared_ptr<core::VirtualKnowledgeGraph> vkg,
            const ServerConfig& config);

  static Ticket ImmediateTicket(query::ServerResponse response);

  /// Shard-worker half of the request path: observes queue wait,
  /// expires still-queued requests past their deadline (never
  /// computing them), runs the engine with the absolute deadline, and
  /// feeds the outcome to the shard's breaker. `key` is null for
  /// aggregates (no cache/coalescing).
  query::ServerResponse ComputeOnWorker(Shard& shard,
                                        const query::ServerRequest& request,
                                        const query::QueryKey* key,
                                        util::Deadline deadline,
                                        util::Deadline::Clock::time_point
                                            admit_time,
                                        bool pressure_degrade);

  /// Re-measures usage (cache residency + queue-depth estimate),
  /// updates the pressure level, and applies reversible transitions
  /// (cache shrink/restore). No-op when memory.budget_bytes == 0.
  void RefreshMemoryPressure();

  std::shared_ptr<core::VirtualKnowledgeGraph> vkg_;
  ServerConfig config_;
  uint64_t opts_hash_ = 0;
  AdmissionController admission_;
  std::vector<std::unique_ptr<Shard>> shards_;
  size_t cache_segment_bytes_ = 0;  // per-shard byte bound at kNormal
  MemoryBudget memory_budget_;

  std::atomic<bool> stopping_{false};
  std::mutex pressure_mu_;  // serializes ApplyPressure transitions
  PressureLevel applied_pressure_ = PressureLevel::kNormal;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_rate_{0};
  std::atomic<uint64_t> rejected_overload_{0};
  std::atomic<uint64_t> rejected_breaker_{0};
  std::atomic<uint64_t> rejected_shed_{0};
  std::atomic<uint64_t> rejected_shutdown_{0};
  std::atomic<uint64_t> invalid_{0};
  std::atomic<uint64_t> coalesced_{0};
  std::atomic<uint64_t> computed_topk_{0};
  std::atomic<uint64_t> computed_aggregate_{0};
  std::atomic<uint64_t> expired_in_queue_{0};
  std::atomic<uint64_t> pressure_degraded_{0};
  std::shared_ptr<std::atomic<uint64_t>> expired_waiting_ =
      std::make_shared<std::atomic<uint64_t>>(0);
};

}  // namespace vkg::server

#endif  // VKG_SERVER_SERVER_H_
