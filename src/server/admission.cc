#include "server/admission.h"

#include <algorithm>

#include "util/failpoint.h"

namespace vkg::server {

AdmissionController::AdmissionController(double qps_limit, double burst)
    : qps_limit_(qps_limit),
      burst_(burst > 0.0 ? burst : std::max(qps_limit, 1.0)) {}

AdmissionController::Decision AdmissionController::Admit(
    const std::string& client_id) {
  return AdmitAt(client_id, util::TokenBucket::SecondsNow());
}

AdmissionController::Decision AdmissionController::AdmitAt(
    const std::string& client_id, double now_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  // Injected admission fault: this request alone is turned away with a
  // nominal back-off; the client's bucket is not charged.
  if (VKG_FAILPOINT("server.admit")) {
    ++rejected_count_;
    return {false, 1.0};
  }
  if (qps_limit_ <= 0.0) {
    ++admitted_count_;
    return {true, 0.0};
  }
  auto it = buckets_.find(client_id);
  if (it == buckets_.end()) {
    it = buckets_
             .emplace(std::piecewise_construct,
                      std::forward_as_tuple(client_id),
                      std::forward_as_tuple(qps_limit_, burst_))
             .first;
  }
  util::TokenBucket::Decision d = it->second.TryAcquire(1.0, now_seconds);
  if (d.admitted) {
    ++admitted_count_;
    return {true, 0.0};
  }
  ++rejected_count_;
  return {false, d.retry_after_ms};
}

uint64_t AdmissionController::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_count_;
}

uint64_t AdmissionController::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_count_;
}

size_t AdmissionController::num_clients() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_.size();
}

}  // namespace vkg::server
