#include "server/server.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace vkg::server {

namespace {

// Global-registry handles for the serving counters (DESIGN.md §6e
// handle-caching idiom). The exact per-server numbers live in
// VkgServer's own atomics; these feed the exposition endpoints.
struct ServerMetrics {
  obs::Counter& requests;
  obs::Counter& rejected;
  obs::Counter& overload;
  obs::Counter& breaker_rejected;
  obs::Counter& shed;
  obs::Counter& expired_in_queue;
  obs::Counter& expired_waiting;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Counter& coalesced;
  obs::Counter& computed;
  obs::Histogram& compute_us;
  obs::Histogram& e2e_us;
  obs::Histogram& queue_wait_us;
  obs::Gauge& peak_depth;
  obs::Gauge& memory_pressure;

  static ServerMetrics& Get() {
    static ServerMetrics* metrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      return new ServerMetrics{
          reg.GetCounter("vkg_server_requests_total"),
          reg.GetCounter("vkg_server_rejected_total"),
          reg.GetCounter("vkg_server_overload_rejected_total"),
          reg.GetCounter("vkg_server_breaker_rejected_total"),
          reg.GetCounter("vkg_server_shed_total"),
          reg.GetCounter("vkg_server_expired_in_queue_total"),
          reg.GetCounter("vkg_server_expired_waiting_total"),
          reg.GetCounter("vkg_server_cache_hits_total"),
          reg.GetCounter("vkg_server_cache_misses_total"),
          reg.GetCounter("vkg_server_coalesced_total"),
          reg.GetCounter("vkg_server_computed_total"),
          reg.GetHistogram("vkg_server_compute_us"),
          reg.GetHistogram("vkg_server_e2e_us"),
          reg.GetHistogram("vkg_server_queue_wait_us"),
          reg.GetGauge("vkg_server_peak_depth"),
          reg.GetGauge("vkg_server_memory_pressure")};
    }();
    return *metrics;
  }
};

query::ServerResponse MakeErrorResponse(util::Status status, size_t shard) {
  query::ServerResponse response;
  response.status = std::move(status);
  response.meta.shard = shard;
  return response;
}

double ElapsedUsSince(util::Deadline::Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             util::Deadline::Clock::now() - start)
      .count();
}

// The end-to-end deadline: stamped once at admission so queue wait
// burns the request's own budget.
util::Deadline AdmissionDeadline(const query::ServerRequest& request,
                                 double default_deadline_ms) {
  const double ms =
      request.deadline_ms > 0.0 ? request.deadline_ms : default_deadline_ms;
  return ms > 0.0 ? util::Deadline::AfterMillis(ms)
                  : util::Deadline::Infinite();
}

// Whether a compute outcome speaks to shard health (breaker failure) or
// not (success resets the streak; everything else is dismissed).
bool IsShardFailure(const util::Status& status) {
  switch (status.code()) {
    case util::StatusCode::kInternal:
    case util::StatusCode::kResourceExhausted:
    case util::StatusCode::kIoError:
    case util::StatusCode::kDataLoss:
      return true;
    default:
      return false;
  }
}

}  // namespace

util::Result<std::unique_ptr<VkgServer>> VkgServer::Create(
    std::shared_ptr<core::VirtualKnowledgeGraph> vkg,
    const ServerConfig& config) {
  if (vkg == nullptr) {
    return util::Status::InvalidArgument("vkg must not be null");
  }
  if (config.shards == 0) {
    return util::Status::InvalidArgument("shards must be >= 1");
  }
  return std::unique_ptr<VkgServer>(
      new VkgServer(std::move(vkg), config));
}

VkgServer::VkgServer(std::shared_ptr<core::VirtualKnowledgeGraph> vkg,
                     const ServerConfig& config)
    : vkg_(std::move(vkg)),
      config_(config),
      admission_(config.qps_limit, config.burst),
      memory_budget_(config.memory) {
  // Fingerprint every option that changes answers: results computed
  // under different engine settings must never share a cache slot.
  const core::VkgOptions& opts = vkg_->options();
  opts_hash_ = query::HashBytes(&opts.alpha, sizeof(opts.alpha));
  opts_hash_ = query::HashBytes(&opts.eps, sizeof(opts.eps), opts_hash_);
  opts_hash_ =
      query::HashBytes(&opts.jl_seed, sizeof(opts.jl_seed), opts_hash_);
  const auto method = static_cast<uint32_t>(opts.method);
  opts_hash_ = query::HashBytes(&method, sizeof(method), opts_hash_);

  ShardOptions shard_options;
  shard_options.threads = config_.threads_per_shard;
  shard_options.queue_capacity = config_.queue_capacity;
  shard_options.cache_bytes =
      config_.cache_bytes == 0 ? 0 : config_.cache_bytes / config_.shards;
  // A nonzero total must not round down to disabled segments.
  if (config_.cache_bytes > 0 && shard_options.cache_bytes == 0) {
    shard_options.cache_bytes = 1;
  }
  shard_options.cache_entries = config_.cache_entries;
  shard_options.default_deadline_ms = config_.default_deadline_ms;
  shard_options.default_budget = config_.default_budget;
  shard_options.breaker = config_.breaker;
  shard_options.pressure_budget = config_.pressure_budget;
  if (shard_options.pressure_budget.Unlimited()) {
    // "Forced into budgeted mode" must actually bound work even when the
    // operator never picked a number.
    shard_options.pressure_budget.max_points = 4096;
  }
  cache_segment_bytes_ = shard_options.cache_bytes;
  shards_.reserve(config_.shards);
  for (size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, *vkg_, shard_options));
  }
}

VkgServer::~VkgServer() { Stop(); }

size_t VkgServer::ShardOf(const data::Query& query) const {
  uint64_t h = query::HashBytes(&query.anchor, sizeof(query.anchor));
  h = query::HashBytes(&query.relation, sizeof(query.relation), h);
  return static_cast<size_t>(h % shards_.size());
}

uint64_t VkgServer::ShardGeneration(size_t shard) const {
  return shards_[shard]->generation();
}

query::QueryKey VkgServer::MakeKey(
    const query::ServerRequest& request) const {
  const data::Query& q = request.routing_query();
  query::QueryKey key;
  key.anchor = q.anchor;
  key.relation = q.relation;
  key.direction = q.direction;
  key.k = static_cast<uint32_t>(request.k);
  key.opts_hash = opts_hash_;
  return key;
}

VkgServer::Ticket VkgServer::ImmediateTicket(
    query::ServerResponse response) {
  std::promise<query::ServerResponse> promise;
  promise.set_value(std::move(response));
  Ticket ticket;
  ticket.future_ = promise.get_future().share();
  return ticket;
}

query::ServerResponse VkgServer::Ticket::Get() {
  if (!deadline_.infinite() &&
      future_.wait_until(deadline_.at()) == std::future_status::timeout) {
    // The shared computation this follower attached to is still pending
    // past the follower's *own* deadline: resolve to a definitive
    // bounded answer now. The leader keeps computing on its own budget
    // (and still populates the cache for the next request).
    if (expired_waiting_ != nullptr) {
      expired_waiting_->fetch_add(1, std::memory_order_relaxed);
    }
    ServerMetrics::Get().expired_waiting.Inc();
    query::ServerResponse response = MakeErrorResponse(
        util::Status::DeadlineExceeded(
            "coalesced result not ready by this request's deadline"),
        shard_);
    response.meta.coalesced = coalesced_;
    return response;
  }
  query::ServerResponse response = future_.get();
  if (patch_meta_) {
    // Followers share the leader's payload but carry their own serving
    // metadata: they were coalesced; the leader was not.
    response.meta.shard = shard_;
    response.meta.coalesced = coalesced_;
  }
  return response;
}

VkgServer::Ticket VkgServer::Submit(query::ServerRequest request) {
  ServerMetrics& metrics = ServerMetrics::Get();
  requests_.fetch_add(1, std::memory_order_relaxed);
  metrics.requests.Inc();
  const util::Deadline::Clock::time_point admit_time =
      util::Deadline::Clock::now();
  const util::Deadline deadline =
      AdmissionDeadline(request, config_.default_deadline_ms);

  // 0. Shutdown gate: a stopping server owes every caller a definitive
  // answer but no compute.
  if (stopping_.load(std::memory_order_relaxed)) {
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    return ImmediateTicket(MakeErrorResponse(
        util::Status::Unavailable("server shutting down"), 0));
  }

  // 1. Admission: is this client allowed to consume compute at all?
  AdmissionController::Decision admit = admission_.Admit(request.client_id);
  if (!admit.admitted) {
    rejected_rate_.fetch_add(1, std::memory_order_relaxed);
    metrics.rejected.Inc();
    query::ServerResponse response = MakeErrorResponse(
        util::Status::ResourceExhausted(util::StrFormat(
            "client \"%s\" over rate limit", request.client_id.c_str())),
        0);
    response.meta.retry_after_ms = admit.retry_after_ms;
    return ImmediateTicket(std::move(response));
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);

  // 2. Memory pressure: re-measure, apply transitions, shed the lowest
  // priority tier at the top rung (DESIGN.md §6h ladder).
  RefreshMemoryPressure();
  const PressureLevel pressure = memory_budget_.level();
  if (pressure == PressureLevel::kShedding && request.priority <= 0) {
    rejected_shed_.fetch_add(1, std::memory_order_relaxed);
    metrics.shed.Inc();
    query::ServerResponse response = MakeErrorResponse(
        util::Status::ResourceExhausted("shed under memory pressure"), 0);
    response.meta.retry_after_ms = config_.overload_retry_ms;
    return ImmediateTicket(std::move(response));
  }
  const bool pressure_degrade = pressure >= PressureLevel::kDegraded;

  // 3. Route to the owning shard, then validate against its engine.
  const size_t shard_index = ShardOf(request.routing_query());
  Shard& shard = *shards_[shard_index];
  util::Status valid =
      query::ValidateQuery(shard.topk_engine(), request.routing_query());
  if (valid.ok() && request.kind == query::RequestKind::kTopK &&
      request.k == 0) {
    valid = util::Status::InvalidArgument("k must be >= 1");
  }
  if (!valid.ok()) {
    invalid_.fetch_add(1, std::memory_order_relaxed);
    return ImmediateTicket(
        MakeErrorResponse(std::move(valid), shard_index));
  }

  // 4. Injected dispatch fault: isolated to this request (`delay`
  // stalls the submitting thread, modelling a slow router). Not a
  // shard-health signal — the shard never saw the request.
  if (VKG_FAILPOINT("server.shard_dispatch")) {
    return ImmediateTicket(MakeErrorResponse(
        util::Status::Internal("injected shard dispatch fault"),
        shard_index));
  }

  // 5. Backpressure: bounded shard depth, explicit rejection past it.
  if (!shard.TryReserveSlot()) {
    rejected_overload_.fetch_add(1, std::memory_order_relaxed);
    metrics.overload.Inc();
    query::ServerResponse response = MakeErrorResponse(
        util::Status::ResourceExhausted(
            util::StrFormat("shard %zu queue full", shard_index)),
        shard_index);
    response.meta.retry_after_ms = config_.overload_retry_ms;
    return ImmediateTicket(std::move(response));
  }
  metrics.peak_depth.SetMax(static_cast<double>(shard.depth()));

  // 6. Circuit breaker: an Open shard fast-fails compute-bound work
  // with a retry hint instead of absorbing traffic it cannot serve.
  // Sits *after* the cache fast path below — cache hits need no shard
  // compute, so an Open shard keeps serving them. Every admitted
  // request owes the breaker exactly one outcome record.
  auto admit_breaker = [&]() -> std::optional<Ticket> {
    CircuitBreaker::Admission breaker_admit = shard.breaker().Admit();
    if (breaker_admit.admitted) return std::nullopt;
    shard.ReleaseSlot();
    rejected_breaker_.fetch_add(1, std::memory_order_relaxed);
    metrics.breaker_rejected.Inc();
    query::ServerResponse response = MakeErrorResponse(
        util::Status::ResourceExhausted(util::StrFormat(
            "shard %zu circuit breaker open", shard_index)),
        shard_index);
    response.meta.retry_after_ms = breaker_admit.retry_after_ms;
    return ImmediateTicket(std::move(response));
  };

  if (request.kind == query::RequestKind::kAggregate) {
    // Aggregates skip cache and coalescing (estimator-dependent
    // payloads stay engine-agnostic; see DESIGN.md §6g).
    if (std::optional<Ticket> rejected = admit_breaker()) {
      return *std::move(rejected);
    }
    auto inflight = std::make_shared<Shard::InFlight>();
    inflight->future = inflight->promise.get_future().share();
    Ticket ticket;
    ticket.future_ = inflight->future;
    Shard* shard_ptr = &shard;
    auto req = std::make_shared<query::ServerRequest>(std::move(request));
    shard.pool().Submit(
        [this, shard_ptr, req, inflight, deadline, admit_time,
         pressure_degrade] {
          inflight->promise.set_value(
              ComputeOnWorker(*shard_ptr, *req, /*key=*/nullptr, deadline,
                              admit_time, pressure_degrade));
          shard_ptr->ReleaseSlot();
        });
    return ticket;
  }

  const query::QueryKey key = MakeKey(request);

  // 7. Result cache, guarded by the shard tree's crack generation. The
  // injected cache fault (`server.cache`) poisons exactly this
  // request's lookup.
  if (VKG_FAILPOINT("server.cache")) {
    shard.ReleaseSlot();
    return ImmediateTicket(MakeErrorResponse(
        util::Status::Internal("injected cache fault"), shard_index));
  }
  if (!request.bypass_cache) {
    std::optional<ResultCache::Entry> hit =
        shard.cache().Lookup(key, shard.generation());
    if (hit.has_value()) {
      shard.ReleaseSlot();
      metrics.cache_hits.Inc();
      metrics.e2e_us.Observe(ElapsedUsSince(admit_time));
      query::ServerResponse response;
      response.status = util::Status::OK();
      response.topk = std::move(hit->result);
      response.meta.shard = shard_index;
      response.meta.cache_hit = true;
      response.meta.generation = hit->generation;
      return ImmediateTicket(std::move(response));
    }
    metrics.cache_misses.Inc();
  }

  // Cache miss: this request needs shard compute — ask the breaker.
  if (std::optional<Ticket> rejected = admit_breaker()) {
    return *std::move(rejected);
  }

  // 8. Coalescing: identical in-flight computation? Attach, don't
  // recompute. Registration happens here on the submitting thread, so
  // a burst of duplicates collapses no matter how the shard's workers
  // are scheduled.
  bool leader = false;
  std::shared_ptr<Shard::InFlight> inflight =
      shard.JoinOrRegister(key, &leader);
  Ticket ticket;
  ticket.future_ = inflight->future;
  ticket.shard_ = shard_index;
  ticket.patch_meta_ = true;
  if (!leader) {
    shard.ReleaseSlot();  // the leader's slot covers the computation
    shard.breaker().RecordDismissed();
    ticket.coalesced_ = true;
    // Followers inherit the leader's result only while their own
    // deadline permits (bounded Get(), DESIGN.md §6h).
    ticket.deadline_ = deadline;
    ticket.expired_waiting_ = expired_waiting_;
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    metrics.coalesced.Inc();
    return ticket;
  }

  // 9. Leader: run the computation on the owning shard's pool.
  Shard* shard_ptr = &shard;
  auto req = std::make_shared<query::ServerRequest>(std::move(request));
  shard.pool().Submit([this, shard_ptr, req, key, inflight, deadline,
                       admit_time, pressure_degrade] {
    query::ServerResponse response =
        ComputeOnWorker(*shard_ptr, *req, &key, deadline, admit_time,
                        pressure_degrade);
    // Unregister before fulfilling: a request arriving after this line
    // starts a fresh computation (and usually hits the cache instead).
    shard_ptr->FinishInFlight(key);
    inflight->promise.set_value(std::move(response));
    shard_ptr->ReleaseSlot();
  });
  return ticket;
}

query::ServerResponse VkgServer::ComputeOnWorker(
    Shard& shard, const query::ServerRequest& request,
    const query::QueryKey* key, util::Deadline deadline,
    util::Deadline::Clock::time_point admit_time, bool pressure_degrade) {
  ServerMetrics& metrics = ServerMetrics::Get();
  const double queue_wait_us = ElapsedUsSince(admit_time);
  metrics.queue_wait_us.Observe(queue_wait_us);
  shard.breaker().RecordQueueWait(queue_wait_us * 1e-3);

  query::ServerResponse response;
  response.meta.shard = shard.id();
  if (stopping_.load(std::memory_order_relaxed)) {
    // Queued behind Stop(): resolve definitively, never compute.
    response.status = util::Status::Unavailable("server shutting down");
    shard.breaker().RecordDismissed();
    metrics.e2e_us.Observe(ElapsedUsSince(admit_time));
    return response;
  }
  // Injected worker fault (`server.queue`): delay = slow shard, timeout
  // = slow shard whose compute then fails, fail = broken worker. Counts
  // against this shard's breaker — the whole point of the site.
  if (VKG_FAILPOINT("server.queue")) {
    response.status = util::Status::Internal("injected queue fault");
    shard.breaker().RecordFailure();
    metrics.e2e_us.Observe(ElapsedUsSince(admit_time));
    return response;
  }
  if (deadline.Expired()) {
    // The deadline burned away while the request sat in the queue:
    // failing it now is strictly better than computing a result nobody
    // is waiting for. Not a shard-health signal (the shard may simply
    // be behind a burst).
    expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
    metrics.expired_in_queue.Inc();
    response.status =
        util::Status::DeadlineExceeded("deadline expired in shard queue");
    response.meta.expired_in_queue = true;
    shard.breaker().RecordDismissed();
    metrics.e2e_us.Observe(ElapsedUsSince(admit_time));
    return response;
  }

  {
    obs::ScopedLatencyUs timer(metrics.compute_us);
    metrics.computed.Inc();
    if (key != nullptr) {
      computed_topk_.fetch_add(1, std::memory_order_relaxed);
      response = shard.ComputeTopK(request, *key, deadline, pressure_degrade);
    } else {
      computed_aggregate_.fetch_add(1, std::memory_order_relaxed);
      response =
          shard.ComputeAggregate(request, deadline, pressure_degrade);
    }
  }
  if (response.meta.degraded_by_pressure) {
    pressure_degraded_.fetch_add(1, std::memory_order_relaxed);
  }
  if (response.status.ok()) {
    shard.breaker().RecordSuccess();
  } else if (IsShardFailure(response.status)) {
    shard.breaker().RecordFailure();
  } else {
    shard.breaker().RecordDismissed();
  }
  metrics.e2e_us.Observe(ElapsedUsSince(admit_time));
  return response;
}

query::ServerResponse VkgServer::Execute(query::ServerRequest request) {
  return Submit(std::move(request)).Get();
}

void VkgServer::Drain() {
  for (auto& shard : shards_) shard->pool().Wait();
}

void VkgServer::Stop() {
  // Idempotent flip; late Submits fast-fail, already-queued work
  // resolves with kUnavailable in ComputeOnWorker's stopping gate.
  stopping_.store(true, std::memory_order_relaxed);
  // Wait for the queues to empty: after this, every ticket ever handed
  // out has a value (workers ran each queued task, however briefly).
  // Tasks racing past the Submit-side gate are drained by ~ThreadPool,
  // which runs its backlog before joining — no future is abandoned
  // either way.
  Drain();
}

void VkgServer::RefreshMemoryPressure() {
  if (config_.memory.budget_bytes == 0) return;
  size_t usage = 0;
  for (const auto& shard : shards_) {
    usage += shard->cache().stats().bytes;
    usage += shard->depth() * config_.pressure_request_bytes;
  }
  const PressureLevel level = memory_budget_.Update(usage);
  ServerMetrics::Get().memory_pressure.Set(static_cast<double>(level));
  if (level == applied_pressure_) return;
  std::lock_guard<std::mutex> lock(pressure_mu_);
  if (level == applied_pressure_) return;
  // Rung 1 (kElevated) action, reversible: shrink every cache segment;
  // restore the full bound once pressure clears. Rungs 2 and 3 act on
  // the request path (forced budgets, shedding) and need no state here.
  const bool shrink = level >= PressureLevel::kElevated;
  const bool was_shrunk = applied_pressure_ >= PressureLevel::kElevated;
  if (shrink != was_shrunk) {
    const size_t bound =
        shrink ? static_cast<size_t>(static_cast<double>(
                     cache_segment_bytes_) *
                 config_.pressure_cache_keep)
               : cache_segment_bytes_;
    for (auto& shard : shards_) shard->cache().SetByteBudget(bound);
  }
  applied_pressure_ = level;
}

ServerStats VkgServer::Stats() const {
  ServerStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.admitted = admitted_.load(std::memory_order_relaxed);
  stats.rejected_rate = rejected_rate_.load(std::memory_order_relaxed);
  stats.rejected_overload =
      rejected_overload_.load(std::memory_order_relaxed);
  stats.rejected_breaker =
      rejected_breaker_.load(std::memory_order_relaxed);
  stats.rejected_shed = rejected_shed_.load(std::memory_order_relaxed);
  stats.rejected_shutdown =
      rejected_shutdown_.load(std::memory_order_relaxed);
  stats.invalid = invalid_.load(std::memory_order_relaxed);
  stats.coalesced = coalesced_.load(std::memory_order_relaxed);
  stats.computed_topk = computed_topk_.load(std::memory_order_relaxed);
  stats.computed_aggregate =
      computed_aggregate_.load(std::memory_order_relaxed);
  stats.expired_in_queue =
      expired_in_queue_.load(std::memory_order_relaxed);
  stats.expired_waiting =
      expired_waiting_->load(std::memory_order_relaxed);
  stats.pressure_degraded =
      pressure_degraded_.load(std::memory_order_relaxed);
  stats.memory = memory_budget_.stats();
  stats.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ServerStats::ShardView view;
    view.shard = shard->id();
    view.depth = shard->depth();
    view.peak_depth = shard->peak_depth();
    view.in_flight = shard->in_flight();
    view.generation = shard->generation();
    view.cache = shard->cache().stats();
    view.breaker = shard->breaker().stats();
    stats.cache_hits += view.cache.hits;
    stats.cache_misses += view.cache.misses;
    stats.cache_invalidated += view.cache.invalidated;
    stats.shards.push_back(view);
  }
  return stats;
}

void VkgServer::PublishStats() const {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("vkg_server_shards").Set(static_cast<double>(shards_.size()));
  reg.GetGauge("vkg_server_memory_pressure")
      .Set(static_cast<double>(memory_budget_.level()));
  uint64_t trips = 0;
  uint64_t recoveries = 0;
  uint64_t fast_fails = 0;
  double open_shards = 0.0;
  for (const auto& shard : shards_) {
    const size_t i = shard->id();
    const ResultCache::Stats cache = shard->cache().stats();
    const CircuitBreaker::Stats breaker = shard->breaker().stats();
    trips += breaker.trips;
    recoveries += breaker.recoveries;
    fast_fails += breaker.fast_fails;
    if (breaker.state != BreakerState::kClosed) open_shards += 1.0;
    reg.GetGauge(util::StrFormat("vkg_server_shard_%zu_depth", i))
        .Set(static_cast<double>(shard->depth()));
    reg.GetGauge(util::StrFormat("vkg_server_shard_%zu_peak_depth", i))
        .Set(static_cast<double>(shard->peak_depth()));
    reg.GetGauge(util::StrFormat("vkg_server_shard_%zu_generation", i))
        .Set(static_cast<double>(shard->generation()));
    reg.GetGauge(util::StrFormat("vkg_server_shard_%zu_cache_entries", i))
        .Set(static_cast<double>(cache.entries));
    reg.GetGauge(util::StrFormat("vkg_server_shard_%zu_cache_bytes", i))
        .Set(static_cast<double>(cache.bytes));
    reg.GetGauge(util::StrFormat("vkg_server_shard_%zu_breaker_state", i))
        .Set(static_cast<double>(breaker.state));
  }
  // Aggregate breaker mirror (vkg_server_breaker_*): what a dashboard
  // alert keys on, whichever shard tripped.
  reg.GetGauge("vkg_server_breaker_trips").Set(static_cast<double>(trips));
  reg.GetGauge("vkg_server_breaker_recoveries")
      .Set(static_cast<double>(recoveries));
  reg.GetGauge("vkg_server_breaker_fast_fails")
      .Set(static_cast<double>(fast_fails));
  reg.GetGauge("vkg_server_breaker_open_shards").Set(open_shards);
  // The per-worker query arenas (one per shard worker context) are
  // server-owned memory too; mirror their aggregates alongside.
  obs::PublishArenaStats();
}

}  // namespace vkg::server
