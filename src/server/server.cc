#include "server/server.h"

#include <utility>

#include "obs/metrics.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace vkg::server {

namespace {

// Global-registry handles for the serving counters (DESIGN.md §6e
// handle-caching idiom). The exact per-server numbers live in
// VkgServer's own atomics; these feed the exposition endpoints.
struct ServerMetrics {
  obs::Counter& requests;
  obs::Counter& rejected;
  obs::Counter& overload;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Counter& coalesced;
  obs::Counter& computed;
  obs::Histogram& compute_us;
  obs::Gauge& peak_depth;

  static ServerMetrics& Get() {
    static ServerMetrics* metrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      return new ServerMetrics{
          reg.GetCounter("vkg_server_requests_total"),
          reg.GetCounter("vkg_server_rejected_total"),
          reg.GetCounter("vkg_server_overload_rejected_total"),
          reg.GetCounter("vkg_server_cache_hits_total"),
          reg.GetCounter("vkg_server_cache_misses_total"),
          reg.GetCounter("vkg_server_coalesced_total"),
          reg.GetCounter("vkg_server_computed_total"),
          reg.GetHistogram("vkg_server_compute_us"),
          reg.GetGauge("vkg_server_peak_depth")};
    }();
    return *metrics;
  }
};

query::ServerResponse MakeErrorResponse(util::Status status, size_t shard) {
  query::ServerResponse response;
  response.status = std::move(status);
  response.meta.shard = shard;
  return response;
}

}  // namespace

util::Result<std::unique_ptr<VkgServer>> VkgServer::Create(
    std::shared_ptr<core::VirtualKnowledgeGraph> vkg,
    const ServerConfig& config) {
  if (vkg == nullptr) {
    return util::Status::InvalidArgument("vkg must not be null");
  }
  if (config.shards == 0) {
    return util::Status::InvalidArgument("shards must be >= 1");
  }
  return std::unique_ptr<VkgServer>(
      new VkgServer(std::move(vkg), config));
}

VkgServer::VkgServer(std::shared_ptr<core::VirtualKnowledgeGraph> vkg,
                     const ServerConfig& config)
    : vkg_(std::move(vkg)),
      config_(config),
      admission_(config.qps_limit, config.burst) {
  // Fingerprint every option that changes answers: results computed
  // under different engine settings must never share a cache slot.
  const core::VkgOptions& opts = vkg_->options();
  opts_hash_ = query::HashBytes(&opts.alpha, sizeof(opts.alpha));
  opts_hash_ = query::HashBytes(&opts.eps, sizeof(opts.eps), opts_hash_);
  opts_hash_ =
      query::HashBytes(&opts.jl_seed, sizeof(opts.jl_seed), opts_hash_);
  const auto method = static_cast<uint32_t>(opts.method);
  opts_hash_ = query::HashBytes(&method, sizeof(method), opts_hash_);

  ShardOptions shard_options;
  shard_options.threads = config_.threads_per_shard;
  shard_options.queue_capacity = config_.queue_capacity;
  shard_options.cache_bytes =
      config_.cache_bytes == 0 ? 0 : config_.cache_bytes / config_.shards;
  // A nonzero total must not round down to disabled segments.
  if (config_.cache_bytes > 0 && shard_options.cache_bytes == 0) {
    shard_options.cache_bytes = 1;
  }
  shard_options.cache_entries = config_.cache_entries;
  shard_options.default_deadline_ms = config_.default_deadline_ms;
  shard_options.default_budget = config_.default_budget;
  shards_.reserve(config_.shards);
  for (size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, *vkg_, shard_options));
  }
}

VkgServer::~VkgServer() { Drain(); }

size_t VkgServer::ShardOf(const data::Query& query) const {
  uint64_t h = query::HashBytes(&query.anchor, sizeof(query.anchor));
  h = query::HashBytes(&query.relation, sizeof(query.relation), h);
  return static_cast<size_t>(h % shards_.size());
}

uint64_t VkgServer::ShardGeneration(size_t shard) const {
  return shards_[shard]->generation();
}

query::QueryKey VkgServer::MakeKey(
    const query::ServerRequest& request) const {
  const data::Query& q = request.routing_query();
  query::QueryKey key;
  key.anchor = q.anchor;
  key.relation = q.relation;
  key.direction = q.direction;
  key.k = static_cast<uint32_t>(request.k);
  key.opts_hash = opts_hash_;
  return key;
}

VkgServer::Ticket VkgServer::ImmediateTicket(
    query::ServerResponse response) {
  std::promise<query::ServerResponse> promise;
  promise.set_value(std::move(response));
  Ticket ticket;
  ticket.future_ = promise.get_future().share();
  return ticket;
}

query::ServerResponse VkgServer::Ticket::Get() {
  query::ServerResponse response = future_.get();
  if (patch_meta_) {
    // Followers share the leader's payload but carry their own serving
    // metadata: they were coalesced; the leader was not.
    response.meta.shard = shard_;
    response.meta.coalesced = coalesced_;
  }
  return response;
}

VkgServer::Ticket VkgServer::Submit(query::ServerRequest request) {
  ServerMetrics& metrics = ServerMetrics::Get();
  requests_.fetch_add(1, std::memory_order_relaxed);
  metrics.requests.Inc();

  // 1. Admission: is this client allowed to consume compute at all?
  AdmissionController::Decision admit = admission_.Admit(request.client_id);
  if (!admit.admitted) {
    rejected_rate_.fetch_add(1, std::memory_order_relaxed);
    metrics.rejected.Inc();
    query::ServerResponse response = MakeErrorResponse(
        util::Status::ResourceExhausted(util::StrFormat(
            "client \"%s\" over rate limit", request.client_id.c_str())),
        0);
    response.meta.retry_after_ms = admit.retry_after_ms;
    return ImmediateTicket(std::move(response));
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);

  // 2. Route to the owning shard, then validate against its engine.
  const size_t shard_index = ShardOf(request.routing_query());
  Shard& shard = *shards_[shard_index];
  util::Status valid =
      query::ValidateQuery(shard.topk_engine(), request.routing_query());
  if (valid.ok() && request.kind == query::RequestKind::kTopK &&
      request.k == 0) {
    valid = util::Status::InvalidArgument("k must be >= 1");
  }
  if (!valid.ok()) {
    invalid_.fetch_add(1, std::memory_order_relaxed);
    return ImmediateTicket(
        MakeErrorResponse(std::move(valid), shard_index));
  }

  // 3. Injected dispatch fault: isolated to this request (`delay`
  // stalls the submitting thread, modelling a slow router).
  if (VKG_FAILPOINT("server.shard_dispatch")) {
    return ImmediateTicket(MakeErrorResponse(
        util::Status::Internal("injected shard dispatch fault"),
        shard_index));
  }

  // 4. Backpressure: bounded shard depth, explicit rejection past it.
  if (!shard.TryReserveSlot()) {
    rejected_overload_.fetch_add(1, std::memory_order_relaxed);
    metrics.overload.Inc();
    query::ServerResponse response = MakeErrorResponse(
        util::Status::ResourceExhausted(
            util::StrFormat("shard %zu queue full", shard_index)),
        shard_index);
    response.meta.retry_after_ms = config_.overload_retry_ms;
    return ImmediateTicket(std::move(response));
  }
  metrics.peak_depth.SetMax(static_cast<double>(shard.depth()));

  if (request.kind == query::RequestKind::kAggregate) {
    // Aggregates skip cache and coalescing (estimator-dependent
    // payloads stay engine-agnostic; see DESIGN.md §6g).
    auto inflight = std::make_shared<Shard::InFlight>();
    inflight->future = inflight->promise.get_future().share();
    Ticket ticket;
    ticket.future_ = inflight->future;
    Shard* shard_ptr = &shard;
    auto req = std::make_shared<query::ServerRequest>(std::move(request));
    computed_aggregate_.fetch_add(1, std::memory_order_relaxed);
    shard.pool().Submit([shard_ptr, req, inflight] {
      obs::ScopedLatencyUs timer(ServerMetrics::Get().compute_us);
      ServerMetrics::Get().computed.Inc();
      inflight->promise.set_value(shard_ptr->ComputeAggregate(*req));
      shard_ptr->ReleaseSlot();
    });
    return ticket;
  }

  const query::QueryKey key = MakeKey(request);

  // 5. Result cache, guarded by the shard tree's crack generation. The
  // injected cache fault (`server.cache`) poisons exactly this
  // request's lookup.
  if (VKG_FAILPOINT("server.cache")) {
    shard.ReleaseSlot();
    return ImmediateTicket(MakeErrorResponse(
        util::Status::Internal("injected cache fault"), shard_index));
  }
  if (!request.bypass_cache) {
    std::optional<ResultCache::Entry> hit =
        shard.cache().Lookup(key, shard.generation());
    if (hit.has_value()) {
      shard.ReleaseSlot();
      metrics.cache_hits.Inc();
      query::ServerResponse response;
      response.status = util::Status::OK();
      response.topk = std::move(hit->result);
      response.meta.shard = shard_index;
      response.meta.cache_hit = true;
      response.meta.generation = hit->generation;
      return ImmediateTicket(std::move(response));
    }
    metrics.cache_misses.Inc();
  }

  // 6. Coalescing: identical in-flight computation? Attach, don't
  // recompute. Registration happens here on the submitting thread, so
  // a burst of duplicates collapses no matter how the shard's workers
  // are scheduled.
  bool leader = false;
  std::shared_ptr<Shard::InFlight> inflight =
      shard.JoinOrRegister(key, &leader);
  Ticket ticket;
  ticket.future_ = inflight->future;
  ticket.shard_ = shard_index;
  ticket.patch_meta_ = true;
  if (!leader) {
    shard.ReleaseSlot();  // the leader's slot covers the computation
    ticket.coalesced_ = true;
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    metrics.coalesced.Inc();
    return ticket;
  }

  // 7. Leader: run the computation on the owning shard's pool.
  computed_topk_.fetch_add(1, std::memory_order_relaxed);
  Shard* shard_ptr = &shard;
  auto req = std::make_shared<query::ServerRequest>(std::move(request));
  shard.pool().Submit([shard_ptr, req, key, inflight] {
    obs::ScopedLatencyUs timer(ServerMetrics::Get().compute_us);
    ServerMetrics::Get().computed.Inc();
    query::ServerResponse response = shard_ptr->ComputeTopK(*req, key);
    // Unregister before fulfilling: a request arriving after this line
    // starts a fresh computation (and usually hits the cache instead).
    shard_ptr->FinishInFlight(key);
    inflight->promise.set_value(std::move(response));
    shard_ptr->ReleaseSlot();
  });
  return ticket;
}

query::ServerResponse VkgServer::Execute(query::ServerRequest request) {
  return Submit(std::move(request)).Get();
}

void VkgServer::Drain() {
  for (auto& shard : shards_) shard->pool().Wait();
}

ServerStats VkgServer::Stats() const {
  ServerStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.admitted = admitted_.load(std::memory_order_relaxed);
  stats.rejected_rate = rejected_rate_.load(std::memory_order_relaxed);
  stats.rejected_overload =
      rejected_overload_.load(std::memory_order_relaxed);
  stats.invalid = invalid_.load(std::memory_order_relaxed);
  stats.coalesced = coalesced_.load(std::memory_order_relaxed);
  stats.computed_topk = computed_topk_.load(std::memory_order_relaxed);
  stats.computed_aggregate =
      computed_aggregate_.load(std::memory_order_relaxed);
  stats.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ServerStats::ShardView view;
    view.shard = shard->id();
    view.depth = shard->depth();
    view.peak_depth = shard->peak_depth();
    view.in_flight = shard->in_flight();
    view.generation = shard->generation();
    view.cache = shard->cache().stats();
    stats.cache_hits += view.cache.hits;
    stats.cache_misses += view.cache.misses;
    stats.cache_invalidated += view.cache.invalidated;
    stats.shards.push_back(view);
  }
  return stats;
}

void VkgServer::PublishStats() const {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("vkg_server_shards").Set(static_cast<double>(shards_.size()));
  for (const auto& shard : shards_) {
    const size_t i = shard->id();
    const ResultCache::Stats cache = shard->cache().stats();
    reg.GetGauge(util::StrFormat("vkg_server_shard_%zu_depth", i))
        .Set(static_cast<double>(shard->depth()));
    reg.GetGauge(util::StrFormat("vkg_server_shard_%zu_peak_depth", i))
        .Set(static_cast<double>(shard->peak_depth()));
    reg.GetGauge(util::StrFormat("vkg_server_shard_%zu_generation", i))
        .Set(static_cast<double>(shard->generation()));
    reg.GetGauge(util::StrFormat("vkg_server_shard_%zu_cache_entries", i))
        .Set(static_cast<double>(cache.entries));
    reg.GetGauge(util::StrFormat("vkg_server_shard_%zu_cache_bytes", i))
        .Set(static_cast<double>(cache.bytes));
  }
}

}  // namespace vkg::server
