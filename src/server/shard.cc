#include "server/shard.h"

#include <exception>
#include <string>
#include <utility>

#include "util/string_util.h"

namespace vkg::server {

Shard::Shard(size_t id, const core::VirtualKnowledgeGraph& vkg,
             const ShardOptions& options)
    : id_(id),
      options_(options),
      cache_(options.cache_bytes, options.cache_entries),
      breaker_(options.breaker) {
  // Each shard cracks its own tree over the shared (immutable) S2
  // points: queries routed here refine only this tree, so shards never
  // contend on a crack mutex and this tree's generation is exactly
  // "publications caused by this shard's traffic".
  tree_ = std::make_unique<index::CrackingRTree>(&vkg.points_s2(),
                                                 vkg.options().rtree);
  topk_engine_ = std::make_unique<query::RTreeTopKEngine>(
      &vkg.graph(), &vkg.embeddings(), &vkg.jl(), tree_.get(),
      vkg.options().eps,
      /*crack_after_query=*/true, util::StrFormat("server-shard-%zu", id));
  aggregate_engine_ = std::make_unique<query::AggregateEngine>(
      &vkg.graph(), &vkg.embeddings(), &vkg.jl(), tree_.get(),
      vkg.options().eps,
      /*crack_after_query=*/true);
  pool_ = std::make_unique<util::ThreadPool>(
      options.threads == 0 ? 1 : options.threads);
}

bool Shard::TryReserveSlot() {
  size_t cur = depth_.load(std::memory_order_relaxed);
  while (true) {
    if (options_.queue_capacity > 0 && cur >= options_.queue_capacity) {
      return false;
    }
    if (depth_.compare_exchange_weak(cur, cur + 1,
                                     std::memory_order_relaxed)) {
      break;
    }
  }
  size_t peak = peak_depth_.load(std::memory_order_relaxed);
  while (peak < cur + 1 && !peak_depth_.compare_exchange_weak(
                               peak, cur + 1, std::memory_order_relaxed)) {
  }
  return true;
}

void Shard::ReleaseSlot() {
  depth_.fetch_sub(1, std::memory_order_relaxed);
}

std::shared_ptr<Shard::InFlight> Shard::JoinOrRegister(
    const query::QueryKey& key, bool* leader) {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  auto it = inflight_.find(key);
  if (it != inflight_.end()) {
    *leader = false;
    return it->second;
  }
  auto entry = std::make_shared<InFlight>();
  entry->future = entry->promise.get_future().share();
  inflight_[key] = entry;
  *leader = true;
  return entry;
}

void Shard::FinishInFlight(const query::QueryKey& key) {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  inflight_.erase(key);
}

size_t Shard::in_flight() const {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  return inflight_.size();
}

namespace {

// One reusable context per worker thread: shard pools own their
// threads, so a context never serves two shards, and
// ApplyRequestControl rearms deadline/budget per request.
query::QueryContext& WorkerContext() {
  thread_local query::QueryContext ctx;
  return ctx;
}

// Memory pressure forces a budget only onto queries that would
// otherwise run unlimited: an explicit request/server budget is already
// bounded and is never loosened *or* tightened behind the caller's back.
bool ForcePressureBudget(const util::ResourceBudget& pressure_budget,
                         query::QueryContext& ctx) {
  if (!ctx.control().budget().Unlimited()) return false;
  ctx.control().set_budget(pressure_budget);
  return true;
}

}  // namespace

query::ServerResponse Shard::ComputeTopK(const query::ServerRequest& request,
                                         const query::QueryKey& key,
                                         util::Deadline deadline,
                                         bool pressure_degrade) {
  query::ServerResponse response;
  response.meta.shard = id_;
  try {
    query::QueryContext& ctx = WorkerContext();
    query::ApplyRequestControlAbsolute(request, deadline,
                                       options_.default_budget, ctx);
    if (pressure_degrade) {
      response.meta.degraded_by_pressure =
          ForcePressureBudget(options_.pressure_budget, ctx);
    }
    response.topk = topk_engine_->TopKQuery(request.query, request.k, ctx);
    // Stamp with the generation current at completion. The query's own
    // crack (if any) published *before* this read, so the entry is
    // fresh unless a later publication bumps the generation — at which
    // point the invalidation contract retires it.
    response.meta.generation = tree_->crack_generation();
    response.status = util::Status::OK();
    cache_.Store(key, response.topk, response.meta.generation);
    SweepStaleCacheEntries();
  } catch (const std::bad_alloc&) {
    response.status =
        util::Status::ResourceExhausted("allocation failed during top-k");
  } catch (const std::exception& e) {
    response.status = util::Status::Internal(
        util::StrFormat("top-k computation failed: %s", e.what()));
  }
  return response;
}

query::ServerResponse Shard::ComputeAggregate(
    const query::ServerRequest& request, util::Deadline deadline,
    bool pressure_degrade) {
  query::ServerResponse response;
  response.meta.shard = id_;
  try {
    query::QueryContext& ctx = WorkerContext();
    query::ApplyRequestControlAbsolute(request, deadline,
                                       options_.default_budget, ctx);
    if (pressure_degrade) {
      response.meta.degraded_by_pressure =
          ForcePressureBudget(options_.pressure_budget, ctx);
    }
    util::Result<query::AggregateResult> result =
        aggregate_engine_->Aggregate(request.aggregate, ctx);
    response.meta.generation = tree_->crack_generation();
    if (result.ok()) {
      response.aggregate = std::move(result).value();
      response.status = util::Status::OK();
    } else {
      response.status = result.status();
    }
    SweepStaleCacheEntries();
  } catch (const std::bad_alloc&) {
    response.status = util::Status::ResourceExhausted(
        "allocation failed during aggregate");
  } catch (const std::exception& e) {
    response.status = util::Status::Internal(
        util::StrFormat("aggregate computation failed: %s", e.what()));
  }
  return response;
}

void Shard::SweepStaleCacheEntries() {
  const uint64_t current = tree_->crack_generation();
  uint64_t seen = swept_generation_.load(std::memory_order_relaxed);
  if (seen == current) return;
  // One sweeper per bump is enough; racers that lose simply skip (the
  // lazy Lookup check still guards every read).
  if (!swept_generation_.compare_exchange_strong(
          seen, current, std::memory_order_relaxed)) {
    return;
  }
  cache_.InvalidateStale(current);
}

}  // namespace vkg::server
