#ifndef VKG_SERVER_CHAOS_H_
#define VKG_SERVER_CHAOS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "query/request.h"
#include "server/server.h"
#include "util/random.h"

namespace vkg::server {

/// Seeded chaos campaign against a live VkgServer (DESIGN.md §6h): arms
/// every server./cracking./alloc. failpoint site with randomized
/// schedules under a multi-client storm, then drives deterministic
/// breaker-trip/recovery and queue-expiry phases, asserting the global
/// resilience invariants:
///
///   1. every Submit resolves to a definitive ServerResponse (no hung
///      Ticket — a hang shows up as the campaign never returning);
///   2. successful exact responses are differential-correct against a
///      sequential pre-campaign oracle;
///   3. breakers both trip AND recover;
///   4. requests whose deadline expired in the queue are never computed
///      (expired_in_queue counts them);
///   5. after the final shutdown storm, Stop() has resolved every
///      outstanding ticket.
///
/// The harness is library code (not test-only) so tests/server_chaos_
/// test.cc and tools/vkg_chaos_cli drive the identical campaign.

/// Every failpoint site a campaign arms (the server.*, cracking.* and
/// alloc.* subset of the catalog in util/failpoint.h; threadpool/
/// serialize/batch sites are not on the serving path).
std::vector<std::string> AllChaosSites();

struct ChaosConfig {
  uint64_t seed = 42;
  /// Total randomized-storm submissions, split across clients & rounds.
  size_t requests = 10000;
  size_t clients = 4;
  /// Failpoint schedules are re-randomized between rounds so sequences
  /// exhaust and re-arm differently.
  size_t rounds = 8;
  /// Fraction of storm requests carrying a finite deadline.
  double deadline_fraction = 0.5;
  double deadline_ms = 50.0;
  /// Upper bound for injected delay/timeout actions (keeps campaign
  /// wall-clock bounded).
  double max_delay_ms = 3.0;
  /// Run the deterministic breaker trip/recovery phase.
  bool breaker_phase = true;
  /// Run the deterministic queue-expiry phase.
  bool expiry_phase = true;
  /// End with a burst submitted right before Stop() to prove shutdown
  /// abandons no ticket. Leaves the server stopped.
  bool shutdown_phase = true;
};

struct ChaosReport {
  size_t submitted = 0;
  size_t resolved = 0;  // == submitted when no ticket hung
  size_t ok = 0;
  size_t rejected = 0;     // admission/breaker/overload/shed
  size_t failed = 0;       // injected faults surfaced as errors
  size_t deadline = 0;     // kDeadlineExceeded (queue expiry, followers)
  size_t unavailable = 0;  // resolved during shutdown
  size_t mismatches = 0;   // differential-correctness violations
  uint64_t breaker_trips = 0;
  uint64_t breaker_recoveries = 0;
  uint64_t expired_in_queue = 0;
  bool breaker_tripped = false;
  bool breaker_recovered = false;
  bool expiry_observed = false;
  bool shutdown_clean = false;

  /// All invariants the campaign can check locally. (Sanitizer
  /// cleanliness is checked by the CI job running the binary.)
  bool Passed(const ChaosConfig& config) const;
  std::string ToString() const;
};

/// Runs the campaign. `slots` are request templates (top-k and/or
/// aggregate) the storm draws from; they must validate against
/// `server`. With shutdown_phase set the server is stopped on return.
/// Failpoints are cleared before and after.
ChaosReport RunChaosCampaign(VkgServer& server,
                             const std::vector<query::ServerRequest>& slots,
                             const ChaosConfig& config);

}  // namespace vkg::server

#endif  // VKG_SERVER_CHAOS_H_
