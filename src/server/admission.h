#ifndef VKG_SERVER_ADMISSION_H_
#define VKG_SERVER_ADMISSION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "util/token_bucket.h"

namespace vkg::server {

/// Per-client token-bucket admission control (DESIGN.md §6g): every
/// client id owns one util::TokenBucket refilling at `qps_limit`
/// tokens/second with `burst` capacity, created on first request. A
/// request past the client's budget is rejected *explicitly* with a
/// retry-after hint — the server never queues unboundedly on behalf of
/// one hot client.
///
/// Layered *before* the per-query deadline/budget machinery: admission
/// decides whether a request may consume compute at all; QueryControl
/// then bounds how much the admitted request consumes.
class AdmissionController {
 public:
  /// `qps_limit` <= 0 disables rate limiting (everything admits).
  /// `burst` <= 0 defaults to max(qps_limit, 1) — roughly one second of
  /// budget may be spent instantaneously.
  AdmissionController(double qps_limit, double burst);

  struct Decision {
    bool admitted = false;
    /// Back-off hint when rejected (ms); negative when the request can
    /// never be admitted. 0 when admitted.
    double retry_after_ms = 0.0;
  };

  /// Charges one token to `client_id` ("" = the shared anonymous
  /// client). The `server.admit` failpoint forces a rejection.
  Decision Admit(const std::string& client_id);

  /// Test hook: identical math, caller-supplied clock.
  Decision AdmitAt(const std::string& client_id, double now_seconds);

  uint64_t admitted() const;
  uint64_t rejected() const;
  size_t num_clients() const;

 private:
  const double qps_limit_;
  const double burst_;

  mutable std::mutex mu_;
  std::map<std::string, util::TokenBucket> buckets_;
  uint64_t admitted_count_ = 0;
  uint64_t rejected_count_ = 0;
};

}  // namespace vkg::server

#endif  // VKG_SERVER_ADMISSION_H_
