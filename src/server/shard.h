#ifndef VKG_SERVER_SHARD_H_
#define VKG_SERVER_SHARD_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/virtual_graph.h"
#include "index/cracking_rtree.h"
#include "query/aggregate_engine.h"
#include "query/request.h"
#include "query/topk_engine.h"
#include "server/health.h"
#include "server/result_cache.h"
#include "util/deadline.h"
#include "util/thread_pool.h"

namespace vkg::server {

/// Per-shard construction knobs (derived from ServerConfig).
struct ShardOptions {
  size_t threads = 1;          // worker pool size
  size_t queue_capacity = 1024;  // max in-flight requests (admit + queued)
  size_t cache_bytes = 0;      // 0 disables this shard's cache segment
  size_t cache_entries = 0;    // 0 = bounded by bytes only
  double default_deadline_ms = 0.0;
  util::ResourceBudget default_budget;
  /// Circuit-breaker thresholds for this shard (DESIGN.md §6h).
  BreakerConfig breaker;
  /// Budget forced onto otherwise-unlimited queries at PressureLevel
  /// kDegraded and above.
  util::ResourceBudget pressure_budget;
};

/// One worker shard of the query server (DESIGN.md §6g). A shard owns
/// everything a request needs after routing:
///
///  * its *own* CrackingRTree over the VKG's shared S2 point set, plus
///    top-k and aggregate engines bound to it — shards crack
///    independently, so two shards never contend on a crack mutex and a
///    shard's crack generation moves only when *its* queries crack;
///  * its own util::ThreadPool (bounded by queue_capacity through the
///    server's depth accounting);
///  * one ResultCache segment, invalidated by this tree's generation;
///  * the in-flight coalescing map: duplicate (h, r, k) requests
///    submitted while an identical computation is pending attach to its
///    shared future instead of computing again.
///
/// Thread safety: Compute* run on pool workers (thread-local
/// QueryContext per worker); the coalescing map and cache are
/// internally locked; the tree is lock-free for readers and serializes
/// its own cracks.
class Shard {
 public:
  Shard(size_t id, const core::VirtualKnowledgeGraph& vkg,
        const ShardOptions& options);

  size_t id() const { return id_; }
  uint64_t generation() const { return tree_->crack_generation(); }
  const query::TopKEngine& topk_engine() const { return *topk_engine_; }
  ResultCache& cache() { return cache_; }
  util::ThreadPool& pool() { return *pool_; }
  CircuitBreaker& breaker() { return breaker_; }
  index::IndexStats TreeStats() const { return tree_->Stats(); }

  // --- Depth accounting (the server's backpressure bound) -----------------

  /// Claims a queue slot; false when the shard is at capacity (the
  /// request must be rejected, not queued).
  bool TryReserveSlot();
  void ReleaseSlot();
  size_t depth() const { return depth_.load(std::memory_order_relaxed); }
  size_t peak_depth() const {
    return peak_depth_.load(std::memory_order_relaxed);
  }

  // --- Coalescing ---------------------------------------------------------

  /// The pending computation for `key`, if any. Registers a new one
  /// (leader) otherwise. `*leader` tells the caller whether it must
  /// enqueue the compute task and later call FinishInFlight.
  struct InFlight {
    std::promise<query::ServerResponse> promise;
    std::shared_future<query::ServerResponse> future;
  };
  std::shared_ptr<InFlight> JoinOrRegister(const query::QueryKey& key,
                                           bool* leader);

  /// Unregisters `key` (leader side, before fulfilling the promise).
  void FinishInFlight(const query::QueryKey& key);
  size_t in_flight() const;

  // --- Compute (worker-thread side) ---------------------------------------

  /// Answers a top-k request on this shard's engine, stamps the
  /// response with the tree generation current at completion, and
  /// populates the cache under `key` (exact results only). `deadline`
  /// is the request's *absolute* end-to-end deadline (stamped at
  /// admission — queue wait has already burned part of it);
  /// `pressure_degrade` forces the shard's pressure budget onto
  /// otherwise-unlimited queries (DESIGN.md §6h).
  query::ServerResponse ComputeTopK(const query::ServerRequest& request,
                                    const query::QueryKey& key,
                                    util::Deadline deadline,
                                    bool pressure_degrade);

  /// Answers an aggregate request (not cached or coalesced).
  query::ServerResponse ComputeAggregate(const query::ServerRequest& request,
                                         util::Deadline deadline,
                                         bool pressure_degrade);

  /// Eagerly sweeps this shard's cache segment when the tree generation
  /// moved past the last observed one. Cheap no-op otherwise.
  void SweepStaleCacheEntries();

 private:
  const size_t id_;
  const ShardOptions options_;

  std::unique_ptr<index::CrackingRTree> tree_;
  std::unique_ptr<query::RTreeTopKEngine> topk_engine_;
  std::unique_ptr<query::AggregateEngine> aggregate_engine_;
  std::unique_ptr<util::ThreadPool> pool_;
  ResultCache cache_;
  CircuitBreaker breaker_;

  std::atomic<size_t> depth_{0};
  std::atomic<size_t> peak_depth_{0};
  std::atomic<uint64_t> swept_generation_{0};

  mutable std::mutex inflight_mu_;
  std::unordered_map<query::QueryKey, std::shared_ptr<InFlight>,
                     query::QueryKeyHash>
      inflight_;
};

}  // namespace vkg::server

#endif  // VKG_SERVER_SHARD_H_
