#ifndef VKG_SERVER_HEALTH_H_
#define VKG_SERVER_HEALTH_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

namespace vkg::server {

/// Circuit-breaker state (DESIGN.md §6h). Numeric values are stable —
/// they are exported verbatim as the vkg_server_breaker_state gauge.
enum class BreakerState : int {
  kClosed = 0,    // healthy: all traffic admitted
  kOpen = 1,      // tripped: fast-fail with a retry_after hint
  kHalfOpen = 2,  // cooling down: limited probe traffic admitted
};

std::string_view BreakerStateName(BreakerState state);

/// Trip/recovery thresholds for one shard's breaker.
struct BreakerConfig {
  /// Consecutive compute failures that trip Closed → Open.
  int failure_threshold = 5;
  /// Cool-down spent Open before probe traffic is allowed (Open →
  /// HalfOpen happens lazily, on the first admission attempt after the
  /// window).
  double open_seconds = 0.25;
  /// Max in-flight probes admitted while HalfOpen; the rest fast-fail.
  int half_open_probes = 2;
  /// Probe successes needed to close again.
  int half_open_successes = 2;
  /// Queue-wait p99 (ms) over the sliding window that trips the breaker
  /// even without hard failures — a shard that is merely drowning should
  /// shed before its callers time out. 0 disables the latency trip.
  double queue_wait_p99_ms = 0.0;
  /// Sliding-window size for the p99 estimate; the latency trip only
  /// fires once the window has filled (cold starts don't trip).
  size_t queue_wait_window = 128;
};

/// Per-shard health tracker: a Closed → Open → HalfOpen circuit breaker
/// driven by consecutive compute failures and queue-wait p99.
///
/// Accounting contract: every request AdmitAt() admits must later call
/// exactly one of RecordSuccess / RecordFailure / RecordDismissed.
/// Dismissed covers admitted requests whose outcome says nothing about
/// shard health (shed by admission control downstream, expired in queue,
/// served from cache, rejected by backpressure) — it releases the
/// in-flight slot without touching the failure streak.
///
/// All clocked entry points take `now_seconds` (monotonic, any origin)
/// so unit tests drive transitions deterministically; the un-suffixed
/// wrappers read steady_clock. Thread-safe.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(const BreakerConfig& config);

  struct Admission {
    bool admitted = true;
    /// When not admitted: how long the caller should wait before trying
    /// this shard again.
    double retry_after_ms = 0.0;
  };

  Admission AdmitAt(double now_seconds);
  Admission Admit();

  void RecordSuccess();
  void RecordFailureAt(double now_seconds);
  void RecordFailure();
  void RecordDismissed();

  /// Feeds one queue-wait observation (ms) into the p99 window; may trip
  /// Closed → Open when the window p99 exceeds the configured bound.
  void RecordQueueWaitAt(double wait_ms, double now_seconds);
  void RecordQueueWait(double wait_ms);

  BreakerState state() const;

  struct Stats {
    BreakerState state = BreakerState::kClosed;
    uint64_t trips = 0;       // transitions into Open (incl. re-opens)
    uint64_t recoveries = 0;  // HalfOpen → Closed transitions
    uint64_t fast_fails = 0;  // admissions rejected by Open/HalfOpen
    uint64_t latency_trips = 0;  // trips caused by queue-wait p99
    int consecutive_failures = 0;
    int in_flight = 0;
  };
  Stats stats() const;

 private:
  void TripLocked(double now_seconds);
  double WindowP99Locked();

  const BreakerConfig config_;

  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  double opened_at_ = 0.0;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  int in_flight_ = 0;
  uint64_t trips_ = 0;
  uint64_t recoveries_ = 0;
  uint64_t fast_fails_ = 0;
  uint64_t latency_trips_ = 0;
  std::vector<double> waits_;  // ring buffer, capacity queue_wait_window
  size_t wait_next_ = 0;
  size_t wait_count_ = 0;
};

}  // namespace vkg::server

#endif  // VKG_SERVER_HEALTH_H_
