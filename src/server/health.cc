#include "server/health.h"

#include <algorithm>
#include <chrono>

namespace vkg::server {

namespace {

double SecondsNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string_view BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(const BreakerConfig& config)
    : config_(config) {
  waits_.resize(std::max<size_t>(config_.queue_wait_window, 1), 0.0);
}

void CircuitBreaker::TripLocked(double now_seconds) {
  state_ = BreakerState::kOpen;
  opened_at_ = now_seconds;
  half_open_successes_ = 0;
  consecutive_failures_ = 0;
  ++trips_;
  // A trip invalidates the latency window: observations from the
  // unhealthy period must not instantly re-trip after recovery.
  wait_count_ = 0;
  wait_next_ = 0;
}

double CircuitBreaker::WindowP99Locked() {
  std::vector<double> sorted(waits_.begin(), waits_.begin() + wait_count_);
  std::sort(sorted.begin(), sorted.end());
  size_t idx = static_cast<size_t>(0.99 * static_cast<double>(sorted.size()));
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

CircuitBreaker::Admission CircuitBreaker::AdmitAt(double now_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kOpen) {
    double elapsed = now_seconds - opened_at_;
    if (elapsed < config_.open_seconds) {
      ++fast_fails_;
      return {false, (config_.open_seconds - elapsed) * 1e3};
    }
    state_ = BreakerState::kHalfOpen;
    half_open_successes_ = 0;
  }
  if (state_ == BreakerState::kHalfOpen &&
      in_flight_ >= config_.half_open_probes) {
    ++fast_fails_;
    // Probe slots turn over within roughly one compute; a quarter of the
    // cool-down is a cheap, self-correcting wait hint.
    return {false, config_.open_seconds * 0.25e3};
  }
  ++in_flight_;
  return {true, 0.0};
}

CircuitBreaker::Admission CircuitBreaker::Admit() {
  return AdmitAt(SecondsNow());
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  if (in_flight_ > 0) --in_flight_;
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen &&
      ++half_open_successes_ >= config_.half_open_successes) {
    state_ = BreakerState::kClosed;
    ++recoveries_;
  }
}

void CircuitBreaker::RecordFailureAt(double now_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (in_flight_ > 0) --in_flight_;
  if (state_ == BreakerState::kHalfOpen) {
    TripLocked(now_seconds);  // a failed probe re-opens immediately
    return;
  }
  if (state_ == BreakerState::kClosed &&
      ++consecutive_failures_ >= config_.failure_threshold) {
    TripLocked(now_seconds);
  }
}

void CircuitBreaker::RecordFailure() { RecordFailureAt(SecondsNow()); }

void CircuitBreaker::RecordDismissed() {
  std::lock_guard<std::mutex> lock(mu_);
  if (in_flight_ > 0) --in_flight_;
}

void CircuitBreaker::RecordQueueWaitAt(double wait_ms, double now_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  waits_[wait_next_] = wait_ms;
  wait_next_ = (wait_next_ + 1) % waits_.size();
  wait_count_ = std::min(wait_count_ + 1, waits_.size());
  if (config_.queue_wait_p99_ms <= 0.0 || state_ != BreakerState::kClosed ||
      wait_count_ < waits_.size()) {
    return;
  }
  if (WindowP99Locked() > config_.queue_wait_p99_ms) {
    ++latency_trips_;
    TripLocked(now_seconds);
  }
}

void CircuitBreaker::RecordQueueWait(double wait_ms) {
  RecordQueueWaitAt(wait_ms, SecondsNow());
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

CircuitBreaker::Stats CircuitBreaker::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.state = state_;
  s.trips = trips_;
  s.recoveries = recoveries_;
  s.fast_fails = fast_fails_;
  s.latency_trips = latency_trips_;
  s.consecutive_failures = consecutive_failures_;
  s.in_flight = in_flight_;
  return s;
}

}  // namespace vkg::server
