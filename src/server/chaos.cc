#include "server/chaos.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <utility>

#include "util/failpoint.h"
#include "util/string_util.h"

namespace vkg::server {

namespace {

// The one place the storm's randomized schedules come from: every site
// gets a fresh COUNT*ACTION sequence each round, ending in a bare
// `off` so exhausted sequences pass instead of sticking.
std::string RandomSchedule(util::Rng& rng, bool worker_site,
                           double max_delay_ms) {
  std::string spec;
  const size_t segments = 1 + rng.UniformIndex(4);
  for (size_t s = 0; s < segments; ++s) {
    const size_t count = 1 + rng.UniformIndex(12);
    spec += util::StrFormat("%zu*", count);
    const double roll = rng.Uniform();
    if (roll < 0.55) {
      spec += "off";
    } else if (roll < 0.80) {
      spec += "fail";
    } else if (worker_site && roll < 0.90) {
      spec += util::StrFormat("timeout(%.2f)",
                              rng.Uniform(0.1, max_delay_ms));
    } else {
      spec += util::StrFormat("delay(%.2f)",
                              rng.Uniform(0.1, max_delay_ms));
    }
    spec += ",";
  }
  spec += "off";
  return spec;
}

struct Oracle {
  query::TopKResult topk;
  double aggregate_value = 0.0;
  bool aggregate_exact = false;
  bool is_aggregate = false;
  bool valid = false;
};

bool MatchesOracle(const query::ServerResponse& got, const Oracle& want) {
  if (want.is_aggregate) {
    if (!got.aggregate.quality.exact || !want.aggregate_exact) return true;
    const double tol =
        1e-9 * std::max(1.0, std::abs(want.aggregate_value));
    if (std::abs(got.aggregate.value - want.aggregate_value) > tol) {
      std::fprintf(stderr, "chaos mismatch: aggregate got=%.12f want=%.12f\n",
                   got.aggregate.value, want.aggregate_value);
      return false;
    }
    return true;
  }
  if (!got.topk.quality.exact || !want.topk.quality.exact) return true;
  if (got.topk.hits.size() != want.topk.hits.size()) {
    std::fprintf(stderr, "chaos mismatch: topk size got=%zu want=%zu\n",
                 got.topk.hits.size(), want.topk.hits.size());
    return false;
  }
  for (size_t h = 0; h < got.topk.hits.size(); ++h) {
    if (got.topk.hits[h].entity != want.topk.hits[h].entity ||
        std::abs(got.topk.hits[h].distance - want.topk.hits[h].distance) >
            1e-9) {
      std::fprintf(stderr,
                   "chaos mismatch: topk hit %zu got=%llu/%.12f "
                   "want=%llu/%.12f\n",
                   h,
                   static_cast<unsigned long long>(got.topk.hits[h].entity),
                   got.topk.hits[h].distance,
                   static_cast<unsigned long long>(want.topk.hits[h].entity),
                   want.topk.hits[h].distance);
      return false;
    }
  }
  return true;
}

uint64_t SumTrips(const ServerStats& stats) {
  uint64_t trips = 0;
  for (const auto& shard : stats.shards) trips += shard.breaker.trips;
  return trips;
}

uint64_t SumRecoveries(const ServerStats& stats) {
  uint64_t recoveries = 0;
  for (const auto& shard : stats.shards) {
    recoveries += shard.breaker.recoveries;
  }
  return recoveries;
}

}  // namespace

std::vector<std::string> AllChaosSites() {
  return {"server.admit",  "server.cache",   "server.shard_dispatch",
          "server.queue",  "cracking.split", "cracking.publish",
          "alloc.scratch", "alloc.arena"};
}

bool ChaosReport::Passed(const ChaosConfig& config) const {
  if (resolved != submitted) return false;
  if (mismatches != 0) return false;
  if (config.breaker_phase && !(breaker_tripped && breaker_recovered)) {
    return false;
  }
  if (config.expiry_phase &&
      !(expiry_observed && expired_in_queue >= 1)) {
    return false;
  }
  if (config.shutdown_phase && !shutdown_clean) return false;
  return true;
}

std::string ChaosReport::ToString() const {
  return util::StrFormat(
      "submitted=%zu resolved=%zu ok=%zu rejected=%zu failed=%zu "
      "deadline=%zu unavailable=%zu mismatches=%zu trips=%llu "
      "recoveries=%llu expired_in_queue=%llu tripped=%d recovered=%d "
      "expiry=%d shutdown_clean=%d",
      submitted, resolved, ok, rejected, failed, deadline, unavailable,
      mismatches, static_cast<unsigned long long>(breaker_trips),
      static_cast<unsigned long long>(breaker_recoveries),
      static_cast<unsigned long long>(expired_in_queue),
      breaker_tripped ? 1 : 0, breaker_recovered ? 1 : 0,
      expiry_observed ? 1 : 0, shutdown_clean ? 1 : 0);
}

ChaosReport RunChaosCampaign(
    VkgServer& server, const std::vector<query::ServerRequest>& slots,
    const ChaosConfig& config) {
  ChaosReport report;
  if (slots.empty()) return report;
  util::FailPointRegistry& registry = util::FailPointRegistry::Instance();
  registry.Clear();

  // --- Oracle pass (sequential, fault-free, unlimited) --------------------
  std::vector<Oracle> oracle(slots.size());
  for (size_t i = 0; i < slots.size(); ++i) {
    query::ServerRequest req = slots[i];
    req.deadline_ms = 0.0;
    req.budget = util::ResourceBudget{};
    req.bypass_cache = true;
    req.priority = 1;
    query::ServerResponse r = server.Execute(std::move(req));
    if (!r.ok()) continue;
    oracle[i].valid = true;
    if (slots[i].kind == query::RequestKind::kAggregate) {
      oracle[i].is_aggregate = true;
      oracle[i].aggregate_value = r.aggregate.value;
      oracle[i].aggregate_exact = r.aggregate.quality.exact;
    } else {
      oracle[i].topk = r.topk;
    }
  }

  // --- Phase 1: randomized multi-client storm -----------------------------
  std::atomic<size_t> submitted{0};
  std::atomic<size_t> resolved{0};
  std::atomic<size_t> count_ok{0};
  std::atomic<size_t> count_rejected{0};
  std::atomic<size_t> count_failed{0};
  std::atomic<size_t> count_deadline{0};
  std::atomic<size_t> count_unavailable{0};
  std::atomic<size_t> count_mismatch{0};

  // `slot >= oracle.size()` opts out of the differential check (used
  // for phase-3 blockers whose k was perturbed to defeat coalescing).
  auto classify = [&](const query::ServerResponse& r, size_t slot) {
    resolved.fetch_add(1, std::memory_order_relaxed);
    if (r.ok()) {
      count_ok.fetch_add(1, std::memory_order_relaxed);
      if (slot < oracle.size() && oracle[slot].valid &&
          !MatchesOracle(r, oracle[slot])) {
        count_mismatch.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    switch (r.status.code()) {
      case util::StatusCode::kResourceExhausted:
        count_rejected.fetch_add(1, std::memory_order_relaxed);
        break;
      case util::StatusCode::kDeadlineExceeded:
        count_deadline.fetch_add(1, std::memory_order_relaxed);
        break;
      case util::StatusCode::kUnavailable:
        count_unavailable.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        count_failed.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  };

  const size_t rounds = std::max<size_t>(config.rounds, 1);
  const size_t clients = std::max<size_t>(config.clients, 1);
  const size_t per_thread =
      (config.requests + rounds * clients - 1) / (rounds * clients);
  const std::vector<std::string> sites = AllChaosSites();
  util::Rng arm_rng(config.seed);
  for (size_t round = 0; round < rounds; ++round) {
    for (const std::string& site : sites) {
      // `server.queue` runs on workers, where timeout = slow-then-
      // broken shard; submit-side sites only delay or fail.
      (void)registry.ConfigureSite(
          site, RandomSchedule(arm_rng, site == "server.queue",
                               config.max_delay_ms));
    }
    std::vector<std::thread> storm;
    storm.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      storm.emplace_back([&, c, round] {
        util::Rng rng(config.seed ^ (0x9e3779b97f4a7c15ULL * (c + 1)) ^
                      (round * 1000003ULL));
        std::vector<std::pair<VkgServer::Ticket, size_t>> batch;
        batch.reserve(8);
        for (size_t i = 0; i < per_thread; ++i) {
          const size_t slot = rng.UniformIndex(slots.size());
          query::ServerRequest req = slots[slot];
          req.client_id = util::StrFormat("chaos-%zu", c);
          req.bypass_cache = rng.Bernoulli(0.2);
          req.priority = rng.Bernoulli(0.5) ? 1 : 0;
          if (rng.Bernoulli(config.deadline_fraction)) {
            req.deadline_ms = config.deadline_ms;
          }
          submitted.fetch_add(1, std::memory_order_relaxed);
          batch.emplace_back(server.Submit(std::move(req)), slot);
          if (batch.size() >= 8) {
            for (auto& [ticket, s] : batch) classify(ticket.Get(), s);
            batch.clear();
          }
        }
        for (auto& [ticket, s] : batch) classify(ticket.Get(), s);
      });
    }
    for (std::thread& t : storm) t.join();
    server.Drain();
  }
  registry.Clear();
  server.Drain();

  // --- Phase 2: deterministic breaker trip + recovery ---------------------
  // Pick a top-k slot; drive its shard's breaker with hard worker
  // faults, then probe it back to Closed with the faults disarmed.
  size_t probe_slot = slots.size();
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].kind == query::RequestKind::kTopK && oracle[i].valid) {
      probe_slot = i;
      break;
    }
  }
  if (config.breaker_phase && probe_slot < slots.size()) {
    const size_t target =
        server.ShardOf(slots[probe_slot].routing_query());
    const BreakerConfig& breaker = server.config().breaker;
    auto probe = [&]() {
      query::ServerRequest req = slots[probe_slot];
      req.bypass_cache = true;
      req.priority = 1;
      submitted.fetch_add(1, std::memory_order_relaxed);
      query::ServerResponse r = server.Execute(std::move(req));
      classify(r, probe_slot);
      return r;
    };
    (void)registry.ConfigureSite("server.queue", "fail");
    for (int i = 0; i < breaker.failure_threshold; ++i) probe();
    registry.Clear();
    report.breaker_tripped =
        server.shard_breaker(target).state() == BreakerState::kOpen;
    // Recovery: wait out the cool-down, then feed probe successes until
    // the breaker closes (bounded so a broken state machine cannot hang
    // the campaign).
    std::this_thread::sleep_for(std::chrono::duration<double>(
        breaker.open_seconds + 0.05));
    for (int i = 0; i < 50 * breaker.half_open_successes; ++i) {
      if (server.shard_breaker(target).state() == BreakerState::kClosed) {
        break;
      }
      probe();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    report.breaker_recovered =
        server.shard_breaker(target).state() == BreakerState::kClosed;
  }

  // --- Phase 3: deterministic queue expiry --------------------------------
  // Blockers (same routing slot, distinct k => distinct keys, no
  // coalescing) occupy every worker of one shard inside a long
  // `server.queue` delay; a short-deadline victim queued behind them
  // must be expired, never computed.
  if (config.expiry_phase && probe_slot < slots.size()) {
    server.Drain();
    const size_t workers =
        std::max<size_t>(server.config().threads_per_shard, 1);
    (void)registry.ConfigureSite(
        "server.queue", util::StrFormat("%zu*delay(150),off", workers));
    std::vector<VkgServer::Ticket> blockers;
    for (size_t b = 0; b < workers; ++b) {
      query::ServerRequest req = slots[probe_slot];
      req.bypass_cache = true;
      req.priority = 1;
      req.k = slots[probe_slot].k + 1 + b;
      submitted.fetch_add(1, std::memory_order_relaxed);
      blockers.push_back(server.Submit(std::move(req)));
    }
    query::ServerRequest victim = slots[probe_slot];
    victim.bypass_cache = true;
    victim.priority = 1;
    victim.deadline_ms = 25.0;
    submitted.fetch_add(1, std::memory_order_relaxed);
    VkgServer::Ticket victim_ticket = server.Submit(std::move(victim));
    query::ServerResponse vr = victim_ticket.Get();
    classify(vr, probe_slot);
    report.expiry_observed =
        vr.status.code() == util::StatusCode::kDeadlineExceeded &&
        vr.meta.expired_in_queue;
    for (auto& ticket : blockers) classify(ticket.Get(), oracle.size());
    registry.Clear();
  }

  // --- Phase 4: shutdown storm --------------------------------------------
  // Queue a burst behind slowed workers, Stop() immediately, and prove
  // every outstanding ticket still resolves definitively.
  if (config.shutdown_phase) {
    (void)registry.ConfigureSite("server.queue", "delay(2)");
    std::vector<std::pair<VkgServer::Ticket, size_t>> tail;
    for (size_t i = 0; i < 64; ++i) {
      const size_t slot = i % slots.size();
      query::ServerRequest req = slots[slot];
      req.bypass_cache = true;
      req.priority = 1;
      submitted.fetch_add(1, std::memory_order_relaxed);
      tail.emplace_back(server.Submit(std::move(req)), slot);
    }
    server.Stop();
    for (auto& [ticket, s] : tail) classify(ticket.Get(), s);
    report.shutdown_clean = true;  // reaching here = no ticket hung
    registry.Clear();
  }

  const ServerStats stats = server.Stats();
  report.submitted = submitted.load();
  report.resolved = resolved.load();
  report.ok = count_ok.load();
  report.rejected = count_rejected.load();
  report.failed = count_failed.load();
  report.deadline = count_deadline.load();
  report.unavailable = count_unavailable.load();
  report.mismatches = count_mismatch.load();
  report.breaker_trips = SumTrips(stats);
  report.breaker_recoveries = SumRecoveries(stats);
  report.expired_in_queue = stats.expired_in_queue;
  return report;
}

}  // namespace vkg::server
