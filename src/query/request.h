#ifndef VKG_QUERY_REQUEST_H_
#define VKG_QUERY_REQUEST_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "data/workload.h"
#include "query/aggregate_engine.h"
#include "query/query_context.h"
#include "query/topk_engine.h"
#include "util/deadline.h"
#include "util/status.h"

namespace vkg::query {

/// Request/response vocabulary of the in-process query server
/// (server::VkgServer, DESIGN.md §6g). Lives in query/ rather than
/// server/ so engines, benches, and alternative front ends (a future
/// wire protocol) share one set of structs without depending on the
/// server implementation.

enum class RequestKind : uint8_t { kTopK = 0, kAggregate = 1 };

std::string_view RequestKindName(RequestKind kind);

/// One client request. `client_id` names the admission-control
/// principal (empty = the anonymous default client); per-request
/// deadline/budget override the server defaults when set.
struct ServerRequest {
  std::string client_id;
  RequestKind kind = RequestKind::kTopK;

  /// Top-k form: anchor/relation/direction plus k.
  data::Query query;
  size_t k = 10;

  /// Aggregate form (kind == kAggregate); `aggregate.query` is the
  /// routed anchor, `query` above is ignored.
  AggregateSpec aggregate;

  /// Per-request resilience overrides; 0 / zero-fields fall back to the
  /// server's configured defaults (ServerConfig).
  double deadline_ms = 0.0;
  util::ResourceBudget budget;

  /// Scheduling priority under memory pressure: at PressureLevel
  /// kShedding, requests with priority <= 0 are rejected while positive
  /// priorities still run. Has no effect below that rung.
  int priority = 0;

  /// Skips the result cache for this request (always computes; the
  /// fresh result is still stored for later hits).
  bool bypass_cache = false;

  /// The query this request routes on (top-k query or aggregate
  /// anchor).
  const data::Query& routing_query() const {
    return kind == RequestKind::kAggregate ? aggregate.query : query;
  }
};

/// Serving metadata attached to every response: where the request ran
/// and which fast path (if any) produced the answer.
struct ServerMeta {
  /// Worker shard that owns the request's (anchor, relation) slot.
  size_t shard = 0;
  /// Served straight from the result cache (bit-identical to the
  /// computation that populated the entry).
  bool cache_hit = false;
  /// Attached to an identical in-flight computation instead of
  /// computing again.
  bool coalesced = false;
  /// Crack generation of the owning shard's tree that the answer is
  /// valid for (the cache-invalidation stamp, DESIGN.md §6g).
  uint64_t generation = 0;
  /// For rejected requests: suggested back-off before retrying. One
  /// contract across every rejection path (asserted by
  /// tests/server_test.cc RetryAfterHintIsConsistent...):
  ///   * 0 on every non-rejected response — the hint is only
  ///     meaningful when rejected() is true;
  ///   * token-bucket rate limit: a refill ESTIMATE — milliseconds
  ///     until the client's bucket holds the tokens this request
  ///     costs. Negative when the cost exceeds burst capacity
  ///     (retrying can never succeed);
  ///   * circuit breaker open: the REMAINING COOLDOWN of the open
  ///     window — retrying sooner is guaranteed to fast-fail again,
  ///     so the hint never exceeds BreakerConfig::open_seconds;
  ///   * queue-full / memory-shed: the fixed
  ///     ServerConfig::overload_retry_ms pacing hint (the server has
  ///     no model of when capacity frees; the constant spreads the
  ///     retry herd);
  ///   * connection/pipeline caps at the TCP front end: the fixed
  ///     NetServerConfig::overload_retry_after_ms pacing hint, same
  ///     fixed-constant semantics as queue-full (net/wire.h).
  /// Consumers (util/retry.h) let a positive hint override their
  /// exponential back-off when the hint is larger; a negative hint
  /// means retrying can never succeed and the call should give up.
  double retry_after_ms = 0.0;
  /// The request sat in the shard queue past its deadline and was
  /// failed without being computed (status kDeadlineExceeded).
  bool expired_in_queue = false;
  /// Memory pressure forced this request into budgeted/degraded mode
  /// (PressureLevel kDegraded or above; DESIGN.md §6h).
  bool degraded_by_pressure = false;
};

/// One answered (or rejected / failed) request. `status` follows the
/// per-slot Result<> contract of the batch executor: a deadline or
/// budget trip is NOT an error — the payload carries a degraded result
/// with quality metadata — while admission rejection surfaces as
/// ResourceExhausted with meta.retry_after_ms set.
struct ServerResponse {
  util::Status status;
  TopKResult topk;            // kind == kTopK and status.ok()
  AggregateResult aggregate;  // kind == kAggregate and status.ok()
  ServerMeta meta;

  bool ok() const { return status.ok(); }
  bool rejected() const {
    return status.code() == util::StatusCode::kResourceExhausted;
  }
};

/// Canonical identity of a cacheable/coalescable top-k computation:
/// the (h, r, direction, k) tuple plus a fingerprint of every engine
/// option that changes answers (eps, alpha, method, jl seed — fixed per
/// server, hashed once at startup). Two requests with equal keys are
/// answered by the same computation.
struct QueryKey {
  kg::EntityId anchor = kg::kInvalidEntity;
  kg::RelationId relation = kg::kInvalidRelation;
  kg::Direction direction = kg::Direction::kTail;
  uint32_t k = 0;
  uint64_t opts_hash = 0;

  friend bool operator==(const QueryKey& a, const QueryKey& b) {
    return a.anchor == b.anchor && a.relation == b.relation &&
           a.direction == b.direction && a.k == b.k &&
           a.opts_hash == b.opts_hash;
  }
};

struct QueryKeyHash {
  size_t operator()(const QueryKey& key) const;
};

/// FNV-1a over a byte span; the building block of QueryKeyHash and the
/// server's option fingerprints.
uint64_t HashBytes(const void* data, size_t len, uint64_t seed = 0);

/// Applies a request's resilience limits (or the given defaults) to a
/// query context: the QueryControl plumbing between the server front
/// end and the engines. The deadline is taken fresh so it covers
/// exactly this request's compute phase.
void ApplyRequestControl(const ServerRequest& request,
                         double default_deadline_ms,
                         const util::ResourceBudget& default_budget,
                         QueryContext& ctx);

/// End-to-end variant: installs an *absolute* deadline stamped at
/// admission, so time spent queued behind other requests burns this
/// request's own budget and a late-dequeued query degrades instead of
/// overshooting its SLA (DESIGN.md §6h). The budget fallback matches
/// ApplyRequestControl.
void ApplyRequestControlAbsolute(const ServerRequest& request,
                                 util::Deadline deadline,
                                 const util::ResourceBudget& default_budget,
                                 QueryContext& ctx);

}  // namespace vkg::query

#endif  // VKG_QUERY_REQUEST_H_
