#ifndef VKG_QUERY_TOPK_ENGINE_H_
#define VKG_QUERY_TOPK_ENGINE_H_

#include <functional>
#include <memory>
#include <vector>

#include "data/workload.h"
#include "embedding/store.h"
#include "index/cracking_rtree.h"
#include "index/h2alsh.h"
#include "index/linear_scan.h"
#include "index/phtree.h"
#include "kg/graph.h"
#include "query/query_context.h"
#include "transform/jl_transform.h"
#include "util/status.h"

namespace vkg::query {

/// One predicted edge returned by a top-k query.
struct TopKHit {
  kg::EntityId entity = kg::kInvalidEntity;
  double distance = 0.0;     // S1 distance to the query center
  double probability = 0.0;  // calibrated via ProbabilityModel
};

/// Result of a top-k entity query.
struct TopKResult {
  std::vector<TopKHit> hits;  // ascending distance
  /// Entities whose exact S1 distance was evaluated (work measure).
  size_t candidates_examined = 0;
  /// Whether the answer is complete or a best-effort result produced
  /// under a deadline / cancellation / resource budget.
  ResultQuality quality;
};

/// Skip predicate of the E'-only query semantics (Section II): the
/// anchor itself and entities already connected to it by `relation` in E
/// are not answers.
std::function<bool(uint32_t)> MakeSkipFn(const kg::KnowledgeGraph& graph,
                                         const data::Query& query);

/// Interface implemented by every compared method.
///
/// Engines hold no per-query mutable state: `TopKQuery` is const and all
/// scratch (visit stamps, candidate buffers) lives in the caller-supplied
/// QueryContext, so one engine instance can serve concurrent queries as
/// long as each thread uses its own context (see BatchTopK in
/// query/batch_executor.h). Shared *index* state guards itself: the
/// cracking R-tree publishes immutable versions that readers pin
/// lock-free, serializing cracks on a writer-side mutex (DESIGN.md
/// §6f), so even online-cracking engines report
/// SupportsConcurrentQueries() == true. An engine returns false only
/// when its index mutates without internal synchronization.
class TopKEngine {
 public:
  virtual ~TopKEngine() = default;

  /// Answers a predictive top-k entity query using `ctx` for scratch
  /// state. `ctx` must not be shared between concurrent callers.
  virtual TopKResult TopKQuery(const data::Query& query, size_t k,
                               QueryContext& ctx) const = 0;

  /// Single-query convenience form (fresh context per call; safe to call
  /// concurrently whenever SupportsConcurrentQueries() holds).
  TopKResult TopKQuery(const data::Query& query, size_t k) const {
    QueryContext ctx;
    return TopKQuery(query, k, ctx);
  }

  /// False when answering a query mutates shared state without internal
  /// synchronization: such engines must not run queries on multiple
  /// threads at once. Online-cracking R-tree engines qualify as true —
  /// the tree synchronizes itself (see index::CrackingRTree).
  virtual bool SupportsConcurrentQueries() const { return true; }

  /// The knowledge graph the engine answers over (null only for engines
  /// without one; used by ValidateQuery / the batch executor to reject
  /// malformed queries before they reach the hot path).
  virtual const kg::KnowledgeGraph* graph() const { return nullptr; }

  /// Method label for reports.
  virtual std::string_view name() const = 0;
};

/// InvalidArgument when `query` references an entity or relation outside
/// the engine's graph (such ids would trip internal invariants deep in
/// the query path). OK for engines that expose no graph.
util::Status ValidateQuery(const TopKEngine& engine,
                           const data::Query& query);

/// The no-index baseline: exact scan in S1 (also the precision@K ground
/// truth).
class LinearTopKEngine : public TopKEngine {
 public:
  LinearTopKEngine(const kg::KnowledgeGraph* graph,
                   const embedding::EmbeddingStore* store)
      : graph_(graph), store_(store), scan_(store) {}

  using TopKEngine::TopKQuery;
  TopKResult TopKQuery(const data::Query& query, size_t k,
                       QueryContext& ctx) const override;
  const kg::KnowledgeGraph* graph() const override { return graph_; }
  std::string_view name() const override { return "no-index"; }

 private:
  const kg::KnowledgeGraph* graph_;
  const embedding::EmbeddingStore* store_;
  index::LinearScan scan_;
};

/// FINDTOP-KENTITIES (Algorithm 3) over a bulk-loaded or cracking R-tree
/// in the transformed space S2.
class RTreeTopKEngine : public TopKEngine {
 public:
  /// `crack_after_query` enables line 9 of Algorithm 3 (incremental index
  /// build with the final query region); disable it for the bulk-loaded
  /// baseline, whose tree is already complete.
  RTreeTopKEngine(const kg::KnowledgeGraph* graph,
                  const embedding::EmbeddingStore* store,
                  const transform::JlTransform* jl,
                  index::CrackingRTree* tree, double eps,
                  bool crack_after_query, std::string_view name);

  using TopKEngine::TopKQuery;
  TopKResult TopKQuery(const data::Query& query, size_t k,
                       QueryContext& ctx) const override;
  const kg::KnowledgeGraph* graph() const override { return graph_; }
  std::string_view name() const override { return name_; }

  /// Query-region expansion factor (1 + eps) currently in use.
  double eps() const { return eps_; }

 private:
  // Seeds N_q: up to k entities from the contour element containing q,
  // walked outward along one sort order (line 2 of Algorithm 3).
  // Appends into `seeds` (arena-backed per-query scratch).
  void SeedCandidates(const index::Node& element, const index::Point& q_s2,
                      size_t k, const std::function<bool(uint32_t)>& skip,
                      util::ArenaVector<uint32_t>& seeds) const;

  const kg::KnowledgeGraph* graph_;
  const embedding::EmbeddingStore* store_;
  const transform::JlTransform* jl_;
  index::CrackingRTree* tree_;
  double eps_;
  bool crack_after_query_;
  std::string name_;
};

/// PH-tree baseline: kNN directly in the high-dimensional space S1.
class PhTreeTopKEngine : public TopKEngine {
 public:
  PhTreeTopKEngine(const kg::KnowledgeGraph* graph,
                   const embedding::EmbeddingStore* store,
                   const index::PhTree* tree)
      : graph_(graph), store_(store), tree_(tree) {}

  using TopKEngine::TopKQuery;
  TopKResult TopKQuery(const data::Query& query, size_t k,
                       QueryContext& ctx) const override;
  const kg::KnowledgeGraph* graph() const override { return graph_; }
  std::string_view name() const override { return "ph-tree"; }

 private:
  const kg::KnowledgeGraph* graph_;
  const embedding::EmbeddingStore* store_;
  const index::PhTree* tree_;
};

/// H2-ALSH baseline. The L2 nearest-neighbor objective is reduced to
/// MIPS over augmented vectors [x; ||x||^2] with queries [2q; -1], so
/// its answers are comparable against the same ground truth:
///   argmax (2q·x - ||x||^2) == argmin ||q - x||^2.
class H2AlshTopKEngine : public TopKEngine {
 public:
  /// Builds the H2-ALSH structure over all entity embeddings.
  H2AlshTopKEngine(const kg::KnowledgeGraph* graph,
                   const embedding::EmbeddingStore* store,
                   const index::H2AlshConfig& config);

  using TopKEngine::TopKQuery;
  TopKResult TopKQuery(const data::Query& query, size_t k,
                       QueryContext& ctx) const override;
  const kg::KnowledgeGraph* graph() const override { return graph_; }
  std::string_view name() const override { return "h2-alsh"; }

  const index::H2Alsh& alsh() const { return *alsh_; }

 private:
  const kg::KnowledgeGraph* graph_;
  const embedding::EmbeddingStore* store_;
  std::unique_ptr<index::H2Alsh> alsh_;
};

}  // namespace vkg::query

#endif  // VKG_QUERY_TOPK_ENGINE_H_
