#include "query/aggregate_bounds.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vkg::query {

namespace {

double Denominator(const std::vector<double>& accessed_values,
                   double unaccessed_count, double v_max) {
  double denom = 0.0;
  for (double v : accessed_values) denom += v * v;
  denom += unaccessed_count * v_max * v_max;
  return denom;
}

}  // namespace

double AggregateTailProbability(double delta, double mu,
                                const std::vector<double>& accessed_values,
                                double unaccessed_count, double v_max) {
  double denom = Denominator(accessed_values, unaccessed_count, v_max);
  if (denom <= 0.0) return 0.0;  // no randomness left
  double exponent = -2.0 * delta * delta * mu * mu / denom;
  return std::min(1.0, 2.0 * std::exp(exponent));
}

double DeltaForConfidence(double confidence_complement, double mu,
                          const std::vector<double>& accessed_values,
                          double unaccessed_count, double v_max) {
  if (mu == 0.0) return std::numeric_limits<double>::infinity();
  double denom = Denominator(accessed_values, unaccessed_count, v_max);
  if (denom <= 0.0) return 0.0;
  // Invert 2 exp(-2 d^2 mu^2 / denom) = p  =>  d = sqrt(denom ln(2/p)) / (mu sqrt(2)).
  double p = std::clamp(confidence_complement, 1e-12, 1.0);
  return std::sqrt(denom * std::log(2.0 / p) / 2.0) / std::fabs(mu);
}

double EstimateUnaccessedMax(const std::vector<double>& accessed_values) {
  if (accessed_values.empty()) return 0.0;
  double max_abs = 0.0;
  for (double v : accessed_values) max_abs = std::max(max_abs, std::fabs(v));
  double n = static_cast<double>(accessed_values.size());
  return (1.0 + 1.0 / n) * max_abs;
}

}  // namespace vkg::query
