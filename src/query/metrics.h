#ifndef VKG_QUERY_METRICS_H_
#define VKG_QUERY_METRICS_H_

#include <string>
#include <vector>

#include "index/cracking_rtree.h"
#include "query/topk_engine.h"

namespace vkg::query {

/// precision@K (Section VI): fraction of the method's top-k result that
/// appears in the ground-truth (no-index) top-k. Empty ground truth
/// yields 1.0 when the result is also empty, else 0.0.
double PrecisionAtK(const TopKResult& result, const TopKResult& ground_truth);

/// Aggregate accuracy metric of Figures 12-16:
/// 1 - |v_returned - v_true| / |v_true| (clamped to [0, 1]; exact zero
/// truth compares exactly).
double AggregateAccuracy(double returned, double truth);

/// Streaming mean/percentile collector for per-query latencies.
class LatencySeries {
 public:
  void Add(double seconds) { samples_.push_back(seconds); }

  size_t count() const { return samples_.size(); }
  double MeanMillis() const;
  double PercentileMillis(double p) const;
  double TotalSeconds() const;

  /// The i-th recorded latency in milliseconds.
  double AtMillis(size_t i) const { return samples_.at(i) * 1e3; }

 private:
  std::vector<double> samples_;
};

/// Crack-contention counters of a serving window (concurrent cracking;
/// DESIGN.md §6d). Deltas between two IndexStats snapshots, so a report
/// can describe one storm rather than the tree's whole lifetime.
struct ContentionSnapshot {
  size_t crack_publishes = 0;
  size_t coalesced_cracks = 0;
  size_t abandoned_cracks = 0;
  size_t crack_waits = 0;
};

/// Contention counters of `after` minus `before`; pass a default-
/// constructed `before` for lifetime totals.
ContentionSnapshot ContentionDelta(const index::IndexStats& before,
                                   const index::IndexStats& after);

/// One-line human-readable rendering, e.g.
/// "cracks: 12 published, 3 coalesced, 1 abandoned, 5 waits".
std::string FormatContention(const ContentionSnapshot& c);

/// The same counters read from the global obs::MetricsRegistry
/// (vkg_crack_*_total; DESIGN.md §6e). Unlike ContentionDelta these are
/// process-wide lifetime totals across every tree, which is what the
/// `vkg_cli stats` and Prometheus surfaces report.
ContentionSnapshot ContentionFromRegistry();

}  // namespace vkg::query

#endif  // VKG_QUERY_METRICS_H_
