#ifndef VKG_QUERY_METRICS_H_
#define VKG_QUERY_METRICS_H_

#include <vector>

#include "query/topk_engine.h"

namespace vkg::query {

/// precision@K (Section VI): fraction of the method's top-k result that
/// appears in the ground-truth (no-index) top-k. Empty ground truth
/// yields 1.0 when the result is also empty, else 0.0.
double PrecisionAtK(const TopKResult& result, const TopKResult& ground_truth);

/// Aggregate accuracy metric of Figures 12-16:
/// 1 - |v_returned - v_true| / |v_true| (clamped to [0, 1]; exact zero
/// truth compares exactly).
double AggregateAccuracy(double returned, double truth);

/// Streaming mean/percentile collector for per-query latencies.
class LatencySeries {
 public:
  void Add(double seconds) { samples_.push_back(seconds); }

  size_t count() const { return samples_.size(); }
  double MeanMillis() const;
  double PercentileMillis(double p) const;
  double TotalSeconds() const;

  /// The i-th recorded latency in milliseconds.
  double AtMillis(size_t i) const { return samples_.at(i) * 1e3; }

 private:
  std::vector<double> samples_;
};

}  // namespace vkg::query

#endif  // VKG_QUERY_METRICS_H_
