#include "query/request.h"

#include <cstring>

namespace vkg::query {

std::string_view RequestKindName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kTopK:
      return "topk";
    case RequestKind::kAggregate:
      return "aggregate";
  }
  return "unknown";
}

uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  // FNV-1a, folded with the seed so chained calls compose.
  uint64_t h = 14695981039346656037ULL ^ seed;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ULL;
  }
  return h;
}

size_t QueryKeyHash::operator()(const QueryKey& key) const {
  // Hash explicit fields, never raw struct bytes: padding would leak
  // indeterminate bits into the hash.
  uint64_t h = HashBytes(&key.anchor, sizeof(key.anchor));
  h = HashBytes(&key.relation, sizeof(key.relation), h);
  const uint8_t dir = static_cast<uint8_t>(key.direction);
  h = HashBytes(&dir, sizeof(dir), h);
  h = HashBytes(&key.k, sizeof(key.k), h);
  h = HashBytes(&key.opts_hash, sizeof(key.opts_hash), h);
  return static_cast<size_t>(h);
}

void ApplyRequestControl(const ServerRequest& request,
                         double default_deadline_ms,
                         const util::ResourceBudget& default_budget,
                         QueryContext& ctx) {
  const double deadline_ms =
      request.deadline_ms > 0.0 ? request.deadline_ms : default_deadline_ms;
  // Always overwrite the deadline: contexts are reused across requests
  // (thread-local per worker), so a previous request's deadline must
  // never leak into one that wants none.
  ctx.control().set_deadline(deadline_ms > 0.0
                                 ? util::Deadline::AfterMillis(deadline_ms)
                                 : util::Deadline::Infinite());
  ctx.control().set_budget(request.budget.Unlimited() ? default_budget
                                                      : request.budget);
  ctx.control().ResetForQuery();
}

void ApplyRequestControlAbsolute(const ServerRequest& request,
                                 util::Deadline deadline,
                                 const util::ResourceBudget& default_budget,
                                 QueryContext& ctx) {
  ctx.control().set_deadline(deadline);
  ctx.control().set_budget(request.budget.Unlimited() ? default_budget
                                                      : request.budget);
  ctx.control().ResetForQuery();
}

}  // namespace vkg::query
