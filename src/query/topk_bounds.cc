#include "query/topk_bounds.h"

#include <algorithm>

#include "transform/jl_bounds.h"

namespace vkg::query {

TopKGuarantee ComputeTopKGuarantee(const std::vector<double>& top_distances,
                                   double eps, size_t alpha) {
  TopKGuarantee g;
  if (top_distances.empty()) return g;
  const double r_k = top_distances.back();
  for (double r_i : top_distances) {
    double m_i;
    if (r_i <= 0.0) {
      m_i = 1e9;  // the exact match cannot be missed
    } else {
      m_i = (r_k / r_i) * (1.0 + eps);
    }
    double miss = transform::MissProbability(m_i, alpha);
    miss = std::min(miss, 1.0);
    g.success_probability *= (1.0 - miss);
    g.expected_missing += miss;
  }
  return g;
}

double FalseInclusionProbability(double eps_prime, size_t alpha) {
  return transform::FalseInclusionBound(eps_prime, alpha);
}

}  // namespace vkg::query
