#ifndef VKG_QUERY_BATCH_EXECUTOR_H_
#define VKG_QUERY_BATCH_EXECUTOR_H_

#include <span>
#include <vector>

#include "query/aggregate_engine.h"
#include "query/topk_engine.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace vkg::query {

/// Batched query execution: fans a span of queries out over a thread
/// pool, one QueryContext (visit stamps + scratch buffers) per worker
/// shard, so the per-query setup cost is amortized and all cores stay
/// busy. Results are positionally aligned with the input span and are
/// identical to answering each query sequentially through the same
/// engine.
///
/// Engines that mutate shared index state per query (online cracking;
/// engine.SupportsConcurrentQueries() == false) are automatically
/// processed sequentially in input order — same API, same results, no
/// data races. Passing `pool == nullptr` also selects the sequential
/// path (with a single reused context, still faster than naive
/// one-off calls).

/// Answers queries[i] with `k` results each.
std::vector<TopKResult> BatchTopK(const TopKEngine& engine,
                                  std::span<const data::Query> queries,
                                  size_t k,
                                  util::ThreadPool* pool = nullptr);

/// Answers aggregate specs[i]; statuses are reported per element.
std::vector<util::Result<AggregateResult>> BatchAggregate(
    const AggregateEngine& engine, std::span<const AggregateSpec> specs,
    util::ThreadPool* pool = nullptr);

}  // namespace vkg::query

#endif  // VKG_QUERY_BATCH_EXECUTOR_H_
