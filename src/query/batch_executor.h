#ifndef VKG_QUERY_BATCH_EXECUTOR_H_
#define VKG_QUERY_BATCH_EXECUTOR_H_

#include <functional>
#include <span>
#include <vector>

#include "obs/trace.h"
#include "query/aggregate_engine.h"
#include "query/topk_engine.h"
#include "util/deadline.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace vkg::query {

/// Batched query execution: fans a span of queries out over a thread
/// pool, one QueryContext (visit stamps + scratch buffers) per worker
/// shard, so the per-query setup cost is amortized and all cores stay
/// busy. Results are positionally aligned with the input span and are
/// identical to answering each query sequentially through the same
/// engine.
///
/// Online-cracking engines run on the parallel path too: the cracking
/// R-tree's read path is lock-free over epoch-published versions and
/// cracks serialize on a writer-side mutex (DESIGN.md §6f), so
/// SupportsConcurrentQueries() holds for them. The
/// rare engine that mutates shared state without internal
/// synchronization (SupportsConcurrentQueries() == false) is
/// automatically processed sequentially in input order — same API, no
/// data races. Passing `pool == nullptr` also selects the sequential
/// path (with a single reused context, still faster than naive
/// one-off calls).
///
/// Failures are isolated per slot: a malformed query, an injected
/// failpoint, or an allocation failure turns into an error Status in
/// that slot while every other query still gets its answer. A deadline
/// or budget trip is NOT an error — the slot holds a best-effort result
/// with result.quality describing the degradation.

/// Shared resilience limits applied to every query in a batch. The
/// deadline and cancel token are batch-wide (one wall-clock cutoff for
/// the whole span); the resource budget is per query (each query's
/// counters reset before it runs).
struct BatchOptions {
  util::Deadline deadline;                     // default: infinite
  const util::CancelToken* cancel = nullptr;   // optional external cancel
  util::ResourceBudget budget;                 // default: unlimited

  /// Per-slot trace export (DESIGN.md §6e). When set, every query runs
  /// with a fresh obs::Trace attached to its context, and the hook is
  /// invoked with (slot, trace) right after the slot's result is
  /// stored. Workers call the hook concurrently from different slots —
  /// it must be thread-safe — but each trace itself is complete and
  /// no longer written to by the time the hook sees it. Leaving the
  /// hook empty keeps the untraced hot path (a null trace pointer).
  std::function<void(size_t slot, const obs::Trace& trace)> trace_hook;
};

/// Answers queries[i] with `k` results each.
std::vector<util::Result<TopKResult>> BatchTopK(
    const TopKEngine& engine, std::span<const data::Query> queries,
    size_t k, util::ThreadPool* pool = nullptr,
    const BatchOptions& options = {});

/// Answers aggregate specs[i]; statuses are reported per element.
std::vector<util::Result<AggregateResult>> BatchAggregate(
    const AggregateEngine& engine, std::span<const AggregateSpec> specs,
    util::ThreadPool* pool = nullptr, const BatchOptions& options = {});

}  // namespace vkg::query

#endif  // VKG_QUERY_BATCH_EXECUTOR_H_
