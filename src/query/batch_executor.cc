#include "query/batch_executor.h"

namespace vkg::query {

std::vector<TopKResult> BatchTopK(const TopKEngine& engine,
                                  std::span<const data::Query> queries,
                                  size_t k, util::ThreadPool* pool) {
  std::vector<TopKResult> results(queries.size());
  const bool parallel = pool != nullptr && pool->num_threads() > 1 &&
                        engine.SupportsConcurrentQueries();
  if (!parallel) {
    QueryContext ctx;
    for (size_t i = 0; i < queries.size(); ++i) {
      results[i] = engine.TopKQuery(queries[i], k, ctx);
    }
    return results;
  }
  pool->ParallelShards(
      queries.size(), [&](size_t /*shard*/, size_t begin, size_t end) {
        QueryContext ctx;  // per-shard: reused across the shard's queries
        for (size_t i = begin; i < end; ++i) {
          results[i] = engine.TopKQuery(queries[i], k, ctx);
        }
      });
  return results;
}

std::vector<util::Result<AggregateResult>> BatchAggregate(
    const AggregateEngine& engine, std::span<const AggregateSpec> specs,
    util::ThreadPool* pool) {
  std::vector<util::Result<AggregateResult>> results(
      specs.size(), util::Status::Internal("unanswered"));
  const bool parallel = pool != nullptr && pool->num_threads() > 1 &&
                        engine.SupportsConcurrentQueries();
  if (!parallel) {
    QueryContext ctx;
    for (size_t i = 0; i < specs.size(); ++i) {
      results[i] = engine.Aggregate(specs[i], ctx);
    }
    return results;
  }
  pool->ParallelShards(
      specs.size(), [&](size_t /*shard*/, size_t begin, size_t end) {
        QueryContext ctx;
        for (size_t i = begin; i < end; ++i) {
          results[i] = engine.Aggregate(specs[i], ctx);
        }
      });
  return results;
}

}  // namespace vkg::query
