#include "query/batch_executor.h"

#include <exception>
#include <new>
#include <optional>
#include <string>

#include "obs/metrics.h"
#include "util/failpoint.h"

namespace vkg::query {

namespace {

// Registry handles shared by all batch runs (cached once; see
// DESIGN.md §6e). Counters are bumped from worker threads — the
// thread-sharded registry makes that a relaxed atomic add.
struct BatchMetrics {
  obs::Counter& queries;
  obs::Counter& failed;
  obs::Counter& degraded;
  obs::Histogram& slot_latency_us;

  static BatchMetrics& Get() {
    static BatchMetrics* metrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      return new BatchMetrics{
          reg.GetCounter("vkg_batch_queries_total"),
          reg.GetCounter("vkg_batch_failed_total"),
          reg.GetCounter("vkg_batch_degraded_total"),
          reg.GetHistogram("vkg_batch_slot_latency_us")};
    }();
    return *metrics;
  }
};

// Queries outside the graph's id space would trip VKG_CHECK invariants
// deep in the engines (process-fatal); reject them at the batch boundary
// so a bad slot cannot take the whole batch down.
util::Status ValidateAgainstGraph(const kg::KnowledgeGraph* graph,
                                  const data::Query& query) {
  if (graph == nullptr) return util::Status::OK();
  if (query.anchor >= graph->num_entities()) {
    return util::Status::InvalidArgument("query anchor out of range");
  }
  if (query.relation >= graph->num_relations()) {
    return util::Status::InvalidArgument("query relation out of range");
  }
  return util::Status::OK();
}

void ConfigureContext(QueryContext& ctx, const BatchOptions& options) {
  ctx.control().set_deadline(options.deadline);
  ctx.control().set_cancel_token(options.cancel);
  ctx.control().set_budget(options.budget);
}

// Runs one query through `run`, translating every failure mode into a
// per-slot Status. `run` is invoked with a control that has been reset
// for this query (fresh point/crack counters, same deadline).
template <typename ResultT, typename RunFn>
util::Result<ResultT> AnswerOne(const kg::KnowledgeGraph* graph,
                                const data::Query& query,
                                QueryContext& ctx, const RunFn& run) {
  if (VKG_FAILPOINT("batch.query")) {
    return util::Status::Internal("injected failure: batch.query");
  }
  VKG_RETURN_IF_ERROR(ValidateAgainstGraph(graph, query));
  ctx.control().ResetForQuery();
  try {
    return run();
  } catch (const std::bad_alloc&) {
    return util::Status::ResourceExhausted(
        "allocation failed while answering query");
  } catch (const std::exception& e) {
    return util::Status::Internal(std::string("query failed: ") +
                                  e.what());
  }
}

}  // namespace

std::vector<util::Result<TopKResult>> BatchTopK(
    const TopKEngine& engine, std::span<const data::Query> queries,
    size_t k, util::ThreadPool* pool, const BatchOptions& options) {
  std::vector<util::Result<TopKResult>> results(
      queries.size(), util::Status::Internal("unanswered"));
  auto answer = [&](size_t i, QueryContext& ctx) {
    BatchMetrics& bm = BatchMetrics::Get();
    bm.queries.Inc();
    obs::ScopedLatencyUs slot_timer(bm.slot_latency_us);
    std::optional<obs::Trace> trace;
    if (options.trace_hook) {
      trace.emplace("topk slot " + std::to_string(i));
      ctx.set_trace(&*trace);
    }
    results[i] = AnswerOne<TopKResult>(
        engine.graph(), queries[i], ctx,
        [&]() -> util::Result<TopKResult> {
          return engine.TopKQuery(queries[i], k, ctx);
        });
    ctx.set_trace(nullptr);
    if (!results[i].ok()) {
      bm.failed.Inc();
    } else if (!results[i]->quality.exact) {
      bm.degraded.Inc();
    }
    if (options.trace_hook) options.trace_hook(i, *trace);
  };
  // Parallel shards share the engine directly: the cracking tree's read
  // path is lock-free (epoch-pinned immutable versions, DESIGN.md §6f),
  // so concurrent slots only ever serialize on the crack-side mutex —
  // and only when they actually crack.
  const bool parallel = pool != nullptr && pool->num_threads() > 1 &&
                        engine.SupportsConcurrentQueries();
  if (!parallel) {
    QueryContext ctx;
    ConfigureContext(ctx, options);
    for (size_t i = 0; i < queries.size(); ++i) answer(i, ctx);
    return results;
  }
  pool->ParallelShards(
      queries.size(), [&](size_t /*shard*/, size_t begin, size_t end) {
        QueryContext ctx;  // per-shard: reused across the shard's queries
        ConfigureContext(ctx, options);
        for (size_t i = begin; i < end; ++i) answer(i, ctx);
      });
  return results;
}

std::vector<util::Result<AggregateResult>> BatchAggregate(
    const AggregateEngine& engine, std::span<const AggregateSpec> specs,
    util::ThreadPool* pool, const BatchOptions& options) {
  std::vector<util::Result<AggregateResult>> results(
      specs.size(), util::Status::Internal("unanswered"));
  auto answer = [&](size_t i, QueryContext& ctx) {
    BatchMetrics& bm = BatchMetrics::Get();
    bm.queries.Inc();
    obs::ScopedLatencyUs slot_timer(bm.slot_latency_us);
    std::optional<obs::Trace> trace;
    if (options.trace_hook) {
      trace.emplace("aggregate slot " + std::to_string(i));
      ctx.set_trace(&*trace);
    }
    results[i] = AnswerOne<AggregateResult>(
        engine.graph(), specs[i].query, ctx,
        [&]() -> util::Result<AggregateResult> {
          return engine.Aggregate(specs[i], ctx);
        });
    ctx.set_trace(nullptr);
    if (!results[i].ok()) {
      bm.failed.Inc();
    } else if (!results[i]->quality.exact) {
      bm.degraded.Inc();
    }
    if (options.trace_hook) options.trace_hook(i, *trace);
  };
  const bool parallel = pool != nullptr && pool->num_threads() > 1 &&
                        engine.SupportsConcurrentQueries();
  if (!parallel) {
    QueryContext ctx;
    ConfigureContext(ctx, options);
    for (size_t i = 0; i < specs.size(); ++i) answer(i, ctx);
    return results;
  }
  pool->ParallelShards(
      specs.size(), [&](size_t /*shard*/, size_t begin, size_t end) {
        QueryContext ctx;
        ConfigureContext(ctx, options);
        for (size_t i = begin; i < end; ++i) answer(i, ctx);
      });
  return results;
}

}  // namespace vkg::query
