#ifndef VKG_QUERY_AGGREGATE_BOUNDS_H_
#define VKG_QUERY_AGGREGATE_BOUNDS_H_

#include <cstddef>
#include <vector>

namespace vkg::query {

/// Theorem 4 (Azuma / martingale bound): for a SUM query with expected
/// value mu (Equation 3), the ground truth S satisfies
///
///   Pr[|S - mu| >= delta * mu]
///     <= 2 exp( -2 delta^2 mu^2 / (sum_{i<=a} v_i^2 + (b-a) v_m^2) )
///
/// where v_i are the accessed values and v_m bounds the magnitude of the
/// b-a unaccessed values.
double AggregateTailProbability(double delta, double mu,
                                const std::vector<double>& accessed_values,
                                double unaccessed_count, double v_max);

/// Smallest delta whose tail probability is <= `confidence_complement`
/// (e.g., 0.05 for a 95% interval). Returns +inf when mu == 0.
double DeltaForConfidence(double confidence_complement, double mu,
                          const std::vector<double>& accessed_values,
                          double unaccessed_count, double v_max);

/// Estimate of |v_m| from the accessed sample when no domain knowledge
/// or R-tree statistics are available: the sample-max heuristic
/// (1 + 1/n) * max|v_i| used for expected MAX (Section V-B).
double EstimateUnaccessedMax(const std::vector<double>& accessed_values);

}  // namespace vkg::query

#endif  // VKG_QUERY_AGGREGATE_BOUNDS_H_
