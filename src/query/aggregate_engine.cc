#include "query/aggregate_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "embedding/batch_kernels.h"
#include "embedding/vector_ops.h"
#include "obs/metrics.h"
#include "query/prob_model.h"
#include "transform/jl_bounds.h"
#include "query/topk_engine.h"
#include "util/check.h"

namespace vkg::query {

namespace {

// Registry handles shared by every aggregate engine (cached once; see
// DESIGN.md §6e).
struct AggMetrics {
  obs::Counter& queries;
  obs::Counter& degraded;
  obs::Counter& accessed;
  obs::Histogram& latency_us;

  static AggMetrics& Get() {
    static AggMetrics* metrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      return new AggMetrics{
          reg.GetCounter("vkg_agg_queries_total"),
          reg.GetCounter("vkg_agg_degraded_total"),
          reg.GetCounter("vkg_agg_accessed_total"),
          reg.GetHistogram("vkg_agg_latency_us")};
    }();
    return *metrics;
  }
};

}  // namespace

std::string_view AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kAvg:
      return "AVG";
    case AggKind::kMax:
      return "MAX";
    case AggKind::kMin:
      return "MIN";
  }
  return "?";
}

AggregateEngine::AggregateEngine(const kg::KnowledgeGraph* graph,
                                 const embedding::EmbeddingStore* store,
                                 const transform::JlTransform* jl,
                                 index::CrackingRTree* tree, double eps,
                                 bool crack_after_query)
    : graph_(graph),
      store_(store),
      jl_(jl),
      tree_(tree),
      eps_(eps),
      crack_after_query_(crack_after_query) {
  top1_ = std::make_unique<RTreeTopKEngine>(graph_, store_, jl_, tree_, eps_,
                                            /*crack_after_query=*/false,
                                            "agg-top1");
}

namespace {

// Fetches the attribute value of `id`, or NaN for COUNT (value unused).
double AttributeValue(const kg::KnowledgeGraph& graph, AggKind kind,
                      const std::string& attribute, uint32_t id) {
  if (kind == AggKind::kCount) return 1.0;
  return graph.attributes().Value(attribute, id);
}

util::Status ValidateSpec(const kg::KnowledgeGraph& graph,
                          const AggregateSpec& spec) {
  if (spec.prob_threshold <= 0.0 || spec.prob_threshold > 1.0) {
    return util::Status::InvalidArgument(
        "prob_threshold must be in (0, 1]");
  }
  if (spec.kind != AggKind::kCount &&
      !graph.attributes().Has(spec.attribute)) {
    return util::Status::NotFound("unknown attribute: " + spec.attribute);
  }
  return util::Status::OK();
}

}  // namespace

util::Result<AggregateResult> AggregateEngine::Aggregate(
    const AggregateSpec& spec, QueryContext& ctx) const {
  VKG_RETURN_IF_ERROR(ValidateSpec(*graph_, spec));
  obs::ScopedLatencyUs latency(AggMetrics::Get().latency_us);
  obs::Trace* trace = ctx.trace();
  obs::Span span(trace, "aggregate");
  span.SetAttr("kind", AggKindName(spec.kind));
  AggMetrics::Get().queries.Inc();
  util::QueryControl& control = ctx.control();
  const auto skip = MakeSkipFn(*graph_, spec.query);

  // d_min via a top-1 probe (shares Algorithm 3 machinery; no cracking —
  // the aggregate's own final region cracks below). The probe shares
  // ctx's control block, so its work draws down the same budget and a
  // stop tripped here degrades the rest of the aggregate too. It also
  // Reset()s ctx's arena on entry, so the aggregate allocates its own
  // arena scratch only after the probe returns.
  TopKResult nearest = top1_->TopKQuery(spec.query, 1, ctx);
  if (nearest.hits.empty()) {
    AggregateResult empty;
    if (control.stopped()) {
      empty.quality.exact = false;
      empty.quality.stop_reason = control.stop_reason();
      AggMetrics::Get().degraded.Inc();
      span.SetAttr("stop_reason",
                   util::StopReasonName(empty.quality.stop_reason));
    }
    return empty;
  }
  util::Arena& arena = ctx.arena();
  arena.Reset();  // reclaim the probe's scratch
  std::span<float> q_s1 = arena.AllocateSpan<float>(store_->dim());
  store_->QueryCenterInto(spec.query.anchor, spec.query.relation,
                          spec.query.direction, q_s1);
  index::Point q_s2 = [&] {
    std::span<float> q_alpha = arena.AllocateSpan<float>(jl_->output_dim());
    jl_->Apply(q_s1, q_alpha);
    return index::Point::FromSpan(q_alpha);
  }();
  ProbabilityModel pm(nearest.hits[0].distance);
  const double r_tau = pm.RadiusForThreshold(spec.prob_threshold);
  const double r_s2 = r_tau * (1.0 + eps_);
  index::Rect region = index::Rect::BoundingBoxOfBall(q_s2, r_s2);
  span.SetAttr("r_tau", r_tau);


  // Best-first traversal by element distance: the a closest records are
  // accessed exactly (S1 distance + attribute page), and once the budget
  // is exhausted the remaining contour elements contribute *estimates*
  // from their entity counts and average distance to the query point —
  // Section V-B's use of the index contour. Per-query work therefore
  // scales with the sample size a plus the touched contour, not with the
  // ball cardinality.
  const size_t budget = spec.sample_size == 0
                            ? std::numeric_limits<size_t>::max()
                            : spec.sample_size;
  const index::PointSet& points = tree_->points();
  util::ArenaVector<BallPoint> accessed{util::ArenaAllocator<BallPoint>(
      &arena)};
  double unaccessed_mass = 0.0;
  double unaccessed_count = 0.0;

  // Unaccessed elements contribute through the exact conditional
  // expectations under the JL transform (given l2 = s, the original
  // distance is l1 = s sqrt(alpha)/chi_alpha): expected member count
  // |e| * P(l1 <= r_tau | s) and expected probability mass
  // |e| * E[(d_min/l1) 1{l1 <= r_tau} | s], evaluated at the element's
  // centroid distance (floored by its MBR min distance).
  const size_t alpha = jl_->output_dim();
  auto estimate_element = [&](const index::Node& node) {
    double centroid_d2 = 0;
    for (size_t d = 0; d < node.mbr.dim; ++d) {
      double mid = 0.5 * (static_cast<double>(node.mbr.lo[d]) +
                          node.mbr.hi[d]);
      double diff = mid - q_s2.c[d];
      centroid_d2 += diff * diff;
    }
    double dist_s2 =
        std::max(std::sqrt(centroid_d2),
                 std::sqrt(node.mbr.MinDistSquared(q_s2.AsSpan())));
    double count = static_cast<double>(node.size());
    unaccessed_count +=
        count * transform::MembershipProbability(dist_s2, r_tau, alpha);
    unaccessed_mass += count * transform::ExpectedInverseMass(
                                   pm.d_min(), dist_s2, r_tau, alpha);
  };

  // The contour traversal runs under one epoch pin (no locks, DESIGN.md
  // §6f): Node pointers in the frontier and ElementIds() spans reference
  // immutable version nodes that the pin keeps allocated. The root is
  // captured once so the frontier traverses a single consistent version.
  index::CrackingRTree::ReadPin pin = tree_->PinForRead();
  const index::Node& tree_root = tree_->root();
  obs::Span contour_span(trace, "agg.contour");
  using Frontier = std::pair<double, const index::Node*>;
  util::ArenaVector<Frontier> frontier_store{
      util::ArenaAllocator<Frontier>(&arena)};
  frontier_store.reserve(64);
  std::priority_queue<Frontier, util::ArenaVector<Frontier>, std::greater<>>
      frontier(std::greater<>(), std::move(frontier_store));
  frontier.emplace(tree_root.mbr.MinDistSquared(q_s2.AsSpan()),
                   &tree_root);
  // Per-element (S2 distance, id) scratch, hoisted so its arena block is
  // reused across contour elements.
  util::ArenaVector<std::pair<double, uint32_t>> local{
      util::ArenaAllocator<std::pair<double, uint32_t>>(&arena)};
  bool budget_exhausted = false;
  while (!frontier.empty()) {
    // A tripped deadline / cancellation / point budget behaves exactly
    // like an exhausted sample budget: stop accessing records and fall
    // back to contour estimates for everything left in the ball — the
    // answer stays usable, just with a wider Theorem 4 error. Gated on a
    // non-empty sample so even an already-expired deadline accesses the
    // first in-ball record instead of degenerating to value 0.
    if (!budget_exhausted && !accessed.empty() && control.ShouldStop()) {
      budget_exhausted = true;
    }
    auto [d2, node] = frontier.top();
    frontier.pop();
    if (std::sqrt(d2) > r_s2) break;  // outside the ball entirely
    if (budget_exhausted) {
      // Keep descending internal nodes (cheap: no point access) so the
      // estimates are taken at contour-element granularity.
      if (node->kind == index::Node::Kind::kInternal) {
        for (const index::Node* child : node->children) {
          double cd2 = child->mbr.MinDistSquared(q_s2.AsSpan());
          if (std::sqrt(cd2) <= r_s2) frontier.emplace(cd2, child);
        }
      } else {
        estimate_element(*node);
      }
      continue;
    }
    if (node->kind == index::Node::Kind::kInternal) {
      for (const index::Node* child : node->children) {
        double cd2 = child->mbr.MinDistSquared(q_s2.AsSpan());
        if (std::sqrt(cd2) <= r_s2) frontier.emplace(cd2, child);
      }
      continue;
    }
    // Contour element: order its points by S2 distance and access them.
    local.clear();
    local.reserve(node->size());
    for (uint32_t id : tree_->ElementIds(*node)) {
      double d = std::sqrt(points.DistSquared(id, q_s2.AsSpan()));
      if (d <= r_s2) local.emplace_back(d, id);
    }
    std::sort(local.begin(), local.end());
    size_t processed = 0;
    for (const auto& [s2_dist, id] : local) {
      if (accessed.size() >= budget) break;
      // Once at least one record is in the sample, honor stops at a
      // small stride; the guaranteed first access keeps an
      // already-expired deadline from producing an empty sample.
      if (!accessed.empty() && (processed & 15) == 0 &&
          control.ShouldStop()) {
        break;
      }
      ++processed;
      if (skip(id)) continue;
      control.AddPoints(1);
      double dist = embedding::L2Distance(store_->Entity(id), q_s1);
      if (dist > r_tau) continue;  // outside the ball in S1
      double value = AttributeValue(*graph_, spec.kind, spec.attribute, id);
      if (spec.kind != AggKind::kCount && std::isnan(value)) continue;
      accessed.push_back({id, dist, pm.ProbabilityAt(dist)});
    }
    if (accessed.size() >= budget || control.stopped()) {
      budget_exhausted = true;
      // Estimate the rest of this element point-wise (distances known).
      for (size_t i = processed; i < local.size(); ++i) {
        double s2_dist = local[i].first;
        unaccessed_count +=
            transform::MembershipProbability(s2_dist, r_tau, alpha);
        unaccessed_mass += transform::ExpectedInverseMass(
            pm.d_min(), s2_dist, r_tau, alpha);
      }
    }
  }

  contour_span.SetAttr("accessed", static_cast<double>(accessed.size()));
  contour_span.SetAttr("estimated_count", unaccessed_count);
  contour_span.End();
  // Unpin before cracking: not required for correctness (writers never
  // wait for readers), but letting the epoch advance during the crack
  // keeps retired-version reclamation prompt.
  pin = index::CrackingRTree::ReadPin();
  if (crack_after_query_ && !control.stopped()) {
    tree_->Crack(region, &control, trace);
  }
  util::Result<AggregateResult> result =
      Estimate(spec, std::span<const BallPoint>(accessed.data(),
                                                accessed.size()),
               unaccessed_mass, unaccessed_count);
  if (result.ok() && control.stopped()) {
    result->quality.exact = false;
    result->quality.stop_reason = control.stop_reason();
    AggMetrics::Get().degraded.Inc();
    span.SetAttr("stop_reason",
                 util::StopReasonName(result->quality.stop_reason));
  }
  if (result.ok()) {
    AggMetrics::Get().accessed.Inc(result->accessed);
    span.SetAttr("accessed", static_cast<double>(result->accessed));
    span.SetAttr("estimated_total", result->estimated_total);
  }
  return result;
}

util::Result<AggregateResult> AggregateEngine::ExactAggregate(
    const AggregateSpec& spec) const {
  VKG_RETURN_IF_ERROR(ValidateSpec(*graph_, spec));
  const auto skip = MakeSkipFn(*graph_, spec.query);
  std::vector<float> q_s1 = store_->QueryCenter(
      spec.query.anchor, spec.query.relation, spec.query.direction);

  // Exact squared distances of every entity through the blocked kernel
  // (one pass; both the d_min scan and the ball scan read from it).
  const size_t n = store_->num_entities();
  std::vector<double> d2(n);
  embedding::BatchL2DistanceSquared(q_s1, *store_, /*first=*/0, n,
                                    d2.data());
  double d_min = -1.0;
  for (uint32_t e = 0; e < n; ++e) {
    if (skip(e)) continue;
    double d = std::sqrt(d2[e]);
    if (d_min < 0 || d < d_min) d_min = d;
  }
  if (d_min < 0) return AggregateResult{};
  ProbabilityModel pm(d_min);
  const double r_tau = pm.RadiusForThreshold(spec.prob_threshold);

  std::vector<BallPoint> accessed;
  for (uint32_t e = 0; e < n; ++e) {
    if (skip(e)) continue;
    double d = std::sqrt(d2[e]);
    if (d > r_tau) continue;
    double value = AttributeValue(*graph_, spec.kind, spec.attribute, e);
    if (spec.kind != AggKind::kCount && std::isnan(value)) continue;
    accessed.push_back({e, d, pm.ProbabilityAt(d)});
  }
  std::sort(accessed.begin(), accessed.end(),
            [](const BallPoint& a, const BallPoint& b) {
              return a.dist < b.dist;
            });
  return Estimate(spec, accessed, /*unaccessed_mass=*/0.0,
                  /*unaccessed_count=*/0.0);
}

util::Result<AggregateResult> AggregateEngine::Estimate(
    const AggregateSpec& spec, std::span<const BallPoint> accessed,
    double unaccessed_mass, double unaccessed_count) const {
  AggregateResult result;
  result.accessed = accessed.size();
  result.estimated_total =
      static_cast<double>(accessed.size()) + unaccessed_count;

  double sum_a_p = 0.0;
  for (const BallPoint& bp : accessed) sum_a_p += bp.prob;
  const double sum_b_p = sum_a_p + unaccessed_mass;
  result.prob_mass_accessed = sum_a_p;
  result.prob_mass_estimated = sum_b_p;

  // Collect values in access (distance) order for Theorem 4 reporting.
  result.sample_values.reserve(accessed.size());
  std::vector<std::pair<double, double>> value_prob;  // (v_i, p_i)
  value_prob.reserve(accessed.size());
  for (const BallPoint& bp : accessed) {
    double v = AttributeValue(*graph_, spec.kind, spec.attribute, bp.id);
    result.sample_values.push_back(v);
    value_prob.emplace_back(v, bp.prob);
  }

  if (accessed.empty() || sum_a_p <= 0.0) {
    result.value = 0.0;
    return result;
  }

  switch (spec.kind) {
    case AggKind::kCount:
      // SUM(1) scaled: equals the estimated total probability mass.
      result.value = sum_b_p;
      break;
    case AggKind::kSum: {
      double weighted = 0.0;
      for (const auto& [v, p] : value_prob) weighted += v * p;
      result.value = weighted * (sum_b_p / sum_a_p);  // Equation (3)
      break;
    }
    case AggKind::kAvg: {
      double weighted = 0.0;
      for (const auto& [v, p] : value_prob) weighted += v * p;
      // E[SUM]/E[COUNT]: the scale factor cancels.
      result.value = weighted / sum_a_p;
      break;
    }
    case AggKind::kMax:
    case AggKind::kMin: {
      // Equation (4), applied to negated values for MIN.
      const double sign = spec.kind == AggKind::kMax ? 1.0 : -1.0;
      std::vector<std::pair<double, double>> vp = value_prob;
      for (auto& [v, p] : vp) v *= sign;
      std::sort(vp.begin(), vp.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      double expected_sample_max = 0.0;
      double none_better = 1.0;  // prod (1 - p_j) over larger values
      for (const auto& [v, p] : vp) {
        expected_sample_max += v * none_better * p;
        none_better *= (1.0 - p);
      }
      double min_v = vp.back().first;
      double estimate = (expected_sample_max - min_v) *
                            (1.0 + 1.0 / sum_a_p) +
                        min_v;
      result.value = sign * estimate;
      break;
    }
  }
  return result;
}

}  // namespace vkg::query
