#include "query/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "obs/metrics.h"
#include "util/math_util.h"

namespace vkg::query {

double PrecisionAtK(const TopKResult& result,
                    const TopKResult& ground_truth) {
  if (ground_truth.hits.empty()) return result.hits.empty() ? 1.0 : 0.0;
  std::unordered_set<uint32_t> truth;
  truth.reserve(ground_truth.hits.size() * 2);
  for (const TopKHit& h : ground_truth.hits) truth.insert(h.entity);
  size_t matched = 0;
  for (const TopKHit& h : result.hits) {
    if (truth.count(h.entity) > 0) ++matched;
  }
  return static_cast<double>(matched) /
         static_cast<double>(ground_truth.hits.size());
}

double AggregateAccuracy(double returned, double truth) {
  if (truth == 0.0) return returned == 0.0 ? 1.0 : 0.0;
  double acc = 1.0 - std::fabs(returned - truth) / std::fabs(truth);
  return std::max(0.0, acc);
}

double LatencySeries::MeanMillis() const {
  return util::Mean(samples_) * 1e3;
}

double LatencySeries::PercentileMillis(double p) const {
  return util::Percentile(samples_, p) * 1e3;
}

double LatencySeries::TotalSeconds() const {
  double total = 0.0;
  for (double s : samples_) total += s;
  return total;
}

ContentionSnapshot ContentionDelta(const index::IndexStats& before,
                                   const index::IndexStats& after) {
  ContentionSnapshot c;
  c.crack_publishes = after.crack_publishes - before.crack_publishes;
  c.coalesced_cracks = after.coalesced_cracks - before.coalesced_cracks;
  c.abandoned_cracks = after.abandoned_cracks - before.abandoned_cracks;
  c.crack_waits = after.crack_waits - before.crack_waits;
  return c;
}

ContentionSnapshot ContentionFromRegistry() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  ContentionSnapshot c;
  c.crack_publishes = reg.CounterValue("vkg_crack_publishes_total");
  c.coalesced_cracks = reg.CounterValue("vkg_crack_coalesced_total");
  c.abandoned_cracks = reg.CounterValue("vkg_crack_abandoned_total");
  c.crack_waits = reg.CounterValue("vkg_crack_waits_total");
  return c;
}

std::string FormatContention(const ContentionSnapshot& c) {
  return "cracks: " + std::to_string(c.crack_publishes) + " published, " +
         std::to_string(c.coalesced_cracks) + " coalesced, " +
         std::to_string(c.abandoned_cracks) + " abandoned, " +
         std::to_string(c.crack_waits) + " waits";
}

}  // namespace vkg::query
