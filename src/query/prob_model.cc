#include "query/prob_model.h"

// ProbabilityModel is fully inline; this translation unit keeps the
// module layout uniform.

namespace vkg::query {}  // namespace vkg::query
