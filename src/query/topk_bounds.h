#ifndef VKG_QUERY_TOPK_BOUNDS_H_
#define VKG_QUERY_TOPK_BOUNDS_H_

#include <cstddef>
#include <vector>

namespace vkg::query {

/// Data-dependent accuracy guarantee of Theorem 2 for a top-k answer.
struct TopKGuarantee {
  /// Probability that FINDTOP-KENTITIES misses no true top-k entity:
  /// prod_i [1 - m_i^alpha / e^{alpha (m_i^2 - 1)/2}].
  double success_probability = 1.0;
  /// Expected number of missing entities vs. the ground truth top-k:
  /// sum_i m_i^alpha / e^{alpha (m_i^2 - 1)/2}.
  double expected_missing = 0.0;
};

/// Evaluates Theorem 2 for an answer whose returned S1 distances are
/// `top_distances` (ascending, r_1* .. r_k*), with query expansion factor
/// (1 + eps) and transform dimensionality alpha. m_i = (r_k*/r_i*)(1+eps).
TopKGuarantee ComputeTopKGuarantee(const std::vector<double>& top_distances,
                                   double eps, size_t alpha);

/// Theorem 3: probability that a point at S1 distance at least
/// r_k* (1+eps)/(1-eps') from q enters the final query region, for
/// 0 < eps' < 1: (1-eps')^alpha e^{alpha(eps' - eps'^2/2)}.
double FalseInclusionProbability(double eps_prime, size_t alpha);

}  // namespace vkg::query

#endif  // VKG_QUERY_TOPK_BOUNDS_H_
