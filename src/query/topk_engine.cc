#include "query/topk_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "embedding/batch_kernels.h"
#include "embedding/vector_ops.h"
#include "obs/metrics.h"
#include "query/prob_model.h"
#include "util/check.h"

namespace vkg::query {

namespace {

// Registry handles shared by every top-k engine (cached once; see
// DESIGN.md §6e).
struct TopKMetrics {
  obs::Counter& queries;
  obs::Counter& degraded;
  obs::Counter& candidates;
  obs::Histogram& latency_us;

  static TopKMetrics& Get() {
    static TopKMetrics* metrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      return new TopKMetrics{
          reg.GetCounter("vkg_topk_queries_total"),
          reg.GetCounter("vkg_topk_degraded_total"),
          reg.GetCounter("vkg_topk_candidates_total"),
          reg.GetHistogram("vkg_topk_latency_us")};
    }();
    return *metrics;
  }

  void Record(const TopKResult& result) {
    queries.Inc();
    candidates.Inc(result.candidates_examined);
    if (!result.quality.exact) degraded.Inc();
  }
};

// Builds a TopKResult from (distance, id) pairs sorted ascending,
// attaching calibrated probabilities.
TopKResult FinalizeHits(std::vector<std::pair<double, uint32_t>> pairs,
                        size_t candidates_examined) {
  TopKResult result;
  result.candidates_examined = candidates_examined;
  if (pairs.empty()) return result;
  ProbabilityModel pm(pairs[0].first);
  result.hits.reserve(pairs.size());
  for (const auto& [dist, id] : pairs) {
    result.hits.push_back({id, dist, pm.ProbabilityAt(dist)});
  }
  return result;
}

}  // namespace

util::Status ValidateQuery(const TopKEngine& engine,
                           const data::Query& query) {
  const kg::KnowledgeGraph* graph = engine.graph();
  if (graph == nullptr) return util::Status::OK();
  if (query.anchor >= graph->num_entities()) {
    return util::Status::InvalidArgument(
        "query anchor is not an entity of the graph");
  }
  if (query.relation >= graph->num_relations()) {
    return util::Status::InvalidArgument(
        "query relation is not a relation of the graph");
  }
  return util::Status::OK();
}

std::function<bool(uint32_t)> MakeSkipFn(const kg::KnowledgeGraph& graph,
                                         const data::Query& query) {
  if (query.direction == kg::Direction::kTail) {
    return [&graph, query](uint32_t candidate) {
      return candidate == query.anchor ||
             graph.HasEdge(query.anchor, query.relation, candidate);
    };
  }
  return [&graph, query](uint32_t candidate) {
    return candidate == query.anchor ||
           graph.HasEdge(candidate, query.relation, query.anchor);
  };
}

// ---------------------------------------------------------------------------
// LinearTopKEngine
// ---------------------------------------------------------------------------

TopKResult LinearTopKEngine::TopKQuery(const data::Query& query, size_t k,
                                       QueryContext& ctx) const {
  obs::ScopedLatencyUs latency(TopKMetrics::Get().latency_us);
  obs::Span span(ctx.trace(), "topk.linear");
  util::QueryControl& control = ctx.control();
  util::Arena& arena = ctx.arena();
  arena.Reset();
  std::span<float> q = arena.AllocateSpan<float>(store_->dim());
  store_->QueryCenterInto(query.anchor, query.relation, query.direction, q);
  const auto skip = MakeSkipFn(*graph_, query);
  const size_t points_before = control.points();
  auto pairs = scan_.TopK(
      q, k, [&skip](uint32_t e) { return skip(e); }, &control);
  TopKResult result =
      FinalizeHits(std::move(pairs), control.points() - points_before);
  if (control.stopped()) {
    // Best-effort: the scan wound down at a block boundary. The scan
    // order carries no spatial meaning, so nothing is certified.
    result.quality.exact = false;
    result.quality.stop_reason = control.stop_reason();
    span.SetAttr("stop_reason",
                 util::StopReasonName(result.quality.stop_reason));
  }
  span.SetAttr("candidates",
               static_cast<double>(result.candidates_examined));
  TopKMetrics::Get().Record(result);
  return result;
}

// ---------------------------------------------------------------------------
// RTreeTopKEngine (Algorithm 3)
// ---------------------------------------------------------------------------

RTreeTopKEngine::RTreeTopKEngine(const kg::KnowledgeGraph* graph,
                                 const embedding::EmbeddingStore* store,
                                 const transform::JlTransform* jl,
                                 index::CrackingRTree* tree, double eps,
                                 bool crack_after_query,
                                 std::string_view name)
    : graph_(graph),
      store_(store),
      jl_(jl),
      tree_(tree),
      eps_(eps),
      crack_after_query_(crack_after_query),
      name_(name) {
  VKG_CHECK(eps > 0);
}

void RTreeTopKEngine::SeedCandidates(
    const index::Node& element, const index::Point& q_s2, size_t k,
    const std::function<bool(uint32_t)>& skip,
    util::ArenaVector<uint32_t>& seeds) const {
  // Traverse the element's points outward from q along sort order 0
  // (increasing |coord0 - q0|), as described for line 2 of Algorithm 3.
  std::span<const uint32_t> ids = tree_->ElementIds(element, /*s=*/0);
  const index::PointSet& points = tree_->points();
  const float q0 = q_s2.c[0];
  size_t pos = static_cast<size_t>(
      std::lower_bound(ids.begin(), ids.end(), q0,
                       [&points](uint32_t id, float v) {
                         return points.coord(id, 0) < v;
                       }) -
      ids.begin());

  seeds.reserve(k);
  size_t left = pos;   // next candidate on the left is ids[left - 1]
  size_t right = pos;  // next candidate on the right is ids[right]
  while (seeds.size() < k && (left > 0 || right < ids.size())) {
    bool take_left;
    if (left == 0) {
      take_left = false;
    } else if (right == ids.size()) {
      take_left = true;
    } else {
      take_left = (q0 - points.coord(ids[left - 1], 0)) <=
                  (points.coord(ids[right], 0) - q0);
    }
    uint32_t id = take_left ? ids[--left] : ids[right++];
    if (!skip(id)) seeds.push_back(id);
  }
}

TopKResult RTreeTopKEngine::TopKQuery(const data::Query& query, size_t k,
                                      QueryContext& ctx) const {
  obs::ScopedLatencyUs latency(TopKMetrics::Get().latency_us);
  obs::Trace* trace = ctx.trace();
  obs::Span span(trace, "topk.rtree");
  span.SetAttr("k", static_cast<double>(k));
  util::QueryControl& control = ctx.control();
  util::Arena& arena = ctx.arena();
  arena.Reset();
  const std::function<bool(uint32_t)> skip = MakeSkipFn(*graph_, query);
  std::span<float> q_s1 = arena.AllocateSpan<float>(store_->dim());
  store_->QueryCenterInto(query.anchor, query.relation, query.direction, q_s1);
  index::Point q_s2 = [&] {
    obs::Span jl_span(trace, "jl.project");
    std::span<float> q_alpha = arena.AllocateSpan<float>(jl_->output_dim());
    jl_->Apply(q_s1, q_alpha);
    return index::Point::FromSpan(q_alpha);
  }();

  if (store_->num_entities() == 0 || k == 0) return {};
  // May flag the query stopped (scratch budget): the seeds below are
  // still examined, so even then the answer is non-empty.
  const auto [visit_stamp, stamp] = ctx.BeginQuery(store_->num_entities());

  size_t candidates = 0;
  // Max-heap of the best k (S1 squared distance, id); its backing
  // vector lives in the query arena like all scratch below.
  using Best = std::pair<double, uint32_t>;
  util::ArenaVector<Best> best_store{util::ArenaAllocator<Best>(&arena)};
  best_store.reserve(k + 1);
  std::priority_queue<Best, util::ArenaVector<Best>> best(
      std::less<Best>(), std::move(best_store));
  constexpr size_t kExamineBlock = 256;
  std::span<uint32_t> cand = arena.AllocateSpan<uint32_t>(kExamineBlock);
  std::span<double> dist = arena.AllocateSpan<double>(kExamineBlock);
  // Exact S1 re-rank of a candidate batch: filter already-seen/skipped
  // ids, evaluate the survivors through the gather kernel, then fold
  // them into the heap in order (identical results to one-at-a-time).
  // Candidates are processed in blocks so a deadline / budget trip is
  // observed mid-element; the seed batch runs unchecked (enforce ==
  // false) so every query — even one that starts already expired —
  // returns a non-empty best-effort answer.
  auto examine = [&](std::span<const uint32_t> ids, bool enforce) {
    for (size_t base = 0; base < ids.size(); base += kExamineBlock) {
      if (enforce && control.ShouldStop()) return;
      const size_t len = std::min(kExamineBlock, ids.size() - base);
      size_t cnt = 0;
      for (uint32_t id : ids.subspan(base, len)) {
        if (visit_stamp[id] == stamp) continue;
        visit_stamp[id] = stamp;
        if (skip(id)) continue;
        cand[cnt++] = id;
      }
      embedding::GatherL2DistanceSquared(q_s1, *store_, cand.first(cnt),
                                         dist.data());
      candidates += cnt;
      control.AddPoints(cnt);
      for (size_t i = 0; i < cnt; ++i) {
        const double d2 = dist[i];
        if (best.size() < k) {
          best.emplace(d2, cand[i]);
        } else if (d2 < best.top().first) {
          best.pop();
          best.emplace(d2, cand[i]);
        }
      }
    }
  };

  // Current S2 query radius; infinite until k candidates exist.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  auto current_radius = [&]() {
    if (best.size() < k) return kInf;
    return std::sqrt(best.top().first) * (1.0 + eps_);
  };

  double r_q = kInf;
  double certified = 0.0;
  double root_margin = 0.0;
  bool complete = true;
  {
    // The whole read phase — probe, seeding, frontier traversal — runs
    // under one epoch pin (no locks, DESIGN.md §6f): the Node pointers
    // and ElementIds() spans below reference immutable version nodes,
    // and the pin keeps them allocated even after concurrent cracks
    // publish newer versions. The root is captured once so the frontier
    // traverses a single consistent version.
    index::CrackingRTree::ReadPin pin = tree_->PinForRead();
    const index::Node& tree_root = tree_->root();
    root_margin = tree_root.mbr.Margin();

    // Lines 1-3: probe for the element containing q and seed N_q, giving
    // the initial radius r_q = r_k*(N_q) (1 + eps).
    const index::Node* element = [&] {
      obs::Span probe_span(trace, "probe");
      return tree_->ProbeSmallest(q_s2.AsSpan());
    }();
    {
      obs::Span seed_span(trace, "seed");
      util::ArenaVector<uint32_t> seeds{
          util::ArenaAllocator<uint32_t>(&arena)};
      SeedCandidates(*element, q_s2, k, skip, seeds);
      seed_span.SetAttr("seeds", static_cast<double>(seeds.size()));
      examine({seeds.data(), seeds.size()}, /*enforce=*/false);
    }

    // Lines 4-8: iteratively shrink Q while examining its points. The
    // contour is traversed best-first by MBR distance to q; every point
    // examined can tighten r_k* and hence Q, so elements that fall outside
    // the refined region are never touched — the paper's "iteratively
    // reduce the query rectangle region until all points in Q have been
    // examined".
    //
    // Pops come off the frontier in non-decreasing MBR distance, so when
    // the query stops early every point strictly closer than the last pop
    // has been examined: that distance is the certified radius within
    // which the Theorem 2/3 guarantees still hold.
    r_q = current_radius();
    obs::Span frontier_span(trace, "frontier");
    size_t frontier_pops = 0;
    using Frontier = std::pair<double, const index::Node*>;  // (mindist, node)
    util::ArenaVector<Frontier> frontier_store{
        util::ArenaAllocator<Frontier>(&arena)};
    frontier_store.reserve(64);
    std::priority_queue<Frontier, util::ArenaVector<Frontier>, std::greater<>>
        frontier(std::greater<>(), std::move(frontier_store));
    frontier.emplace(tree_root.mbr.MinDistSquared(q_s2.AsSpan()),
                     &tree_root);
    while (!frontier.empty()) {
      ++frontier_pops;
      // An empty heap means nothing has been answered yet (the seed
      // element held only skipped entities): keep examining unchecked
      // until one candidate exists, so even an already-expired query
      // returns a non-empty best-effort answer.
      const bool must_progress = best.empty();
      if (!must_progress && control.ShouldStop()) {
        complete = false;
        break;
      }
      auto [d2, node] = frontier.top();
      frontier.pop();
      const double mindist = std::sqrt(d2);
      if (mindist > r_q) break;  // everything left is outside Q
      certified = mindist;
      if (node->kind == index::Node::Kind::kInternal) {
        for (const index::Node* child : node->children) {
          double cd2 = child->mbr.MinDistSquared(q_s2.AsSpan());
          if (std::sqrt(cd2) <= r_q) frontier.emplace(cd2, child);
        }
        continue;
      }
      examine(tree_->ElementIds(*node), /*enforce=*/!must_progress);
      if (!must_progress && control.stopped()) {
        complete = false;  // bailed mid-element
        break;
      }
      r_q = current_radius();
    }
    frontier_span.SetAttr("pops", static_cast<double>(frontier_pops));
    frontier_span.SetAttr("candidates", static_cast<double>(candidates));
  }
  if (r_q == kInf) {
    // Fewer than k valid entities in the whole dataset.
    r_q = root_margin + 1.0;
  }
  if (complete) certified = r_q;
  index::Rect region = index::Rect::BoundingBoxOfBall(q_s2, r_q);

  ResultQuality quality;
  quality.certified_radius = certified;
  if (control.stopped()) {
    quality.exact = false;
    quality.stop_reason = control.stop_reason();
  }

  // Line 9: incremental index build with the final region. A degraded
  // query skips it — its region underestimates Q, and its time is up —
  // while a healthy query cracks under the remaining crack budget.
  if (crack_after_query_ && !control.stopped()) {
    tree_->Crack(region, &control, trace);
  }

  std::vector<std::pair<double, uint32_t>> pairs;
  pairs.reserve(best.size());
  while (!best.empty()) {
    pairs.emplace_back(std::sqrt(best.top().first), best.top().second);
    best.pop();
  }
  std::reverse(pairs.begin(), pairs.end());
  TopKResult result = FinalizeHits(std::move(pairs), candidates);
  result.quality = quality;
  span.SetAttr("radius", r_q);
  span.SetAttr("certified_radius", certified);
  span.SetAttr("candidates", static_cast<double>(candidates));
  if (!quality.exact) {
    span.SetAttr("stop_reason", util::StopReasonName(quality.stop_reason));
  }
  TopKMetrics::Get().Record(result);
  return result;
}

// ---------------------------------------------------------------------------
// PhTreeTopKEngine
// ---------------------------------------------------------------------------

TopKResult PhTreeTopKEngine::TopKQuery(const data::Query& query, size_t k,
                                       QueryContext& /*ctx*/) const {
  std::vector<float> q =
      store_->QueryCenter(query.anchor, query.relation, query.direction);
  auto pairs = tree_->TopK(q, k, MakeSkipFn(*graph_, query));
  return FinalizeHits(std::move(pairs), store_->num_entities());
}

// ---------------------------------------------------------------------------
// H2AlshTopKEngine
// ---------------------------------------------------------------------------

H2AlshTopKEngine::H2AlshTopKEngine(const kg::KnowledgeGraph* graph,
                                   const embedding::EmbeddingStore* store,
                                   const index::H2AlshConfig& config)
    : graph_(graph), store_(store) {
  // Augment items to reduce L2-NN to MIPS: x' = [x ; ||x||^2].
  const size_t n = store->num_entities();
  const size_t d = store->dim();
  std::vector<float> augmented(n * (d + 1));
  for (size_t e = 0; e < n; ++e) {
    std::span<const float> x = store->Entity(static_cast<kg::EntityId>(e));
    double norm2 = 0.0;
    for (size_t i = 0; i < d; ++i) {
      augmented[e * (d + 1) + i] = x[i];
      norm2 += static_cast<double>(x[i]) * x[i];
    }
    augmented[e * (d + 1) + d] = static_cast<float>(norm2);
  }
  alsh_ = std::make_unique<index::H2Alsh>(augmented, n, d + 1, config);
}

TopKResult H2AlshTopKEngine::TopKQuery(const data::Query& query, size_t k,
                                       QueryContext& /*ctx*/) const {
  std::vector<float> q =
      store_->QueryCenter(query.anchor, query.relation, query.direction);
  // Query vector [2q ; -1]: the inner product is 2 q·x - ||x||^2 =
  // ||q||^2 - ||q - x||^2, monotone in -distance.
  std::vector<float> qv(q.size() + 1);
  for (size_t i = 0; i < q.size(); ++i) qv[i] = 2.0f * q[i];
  qv[q.size()] = -1.0f;
  double qnorm2 = embedding::Dot(q, q);

  size_t examined = 0;
  auto scored = alsh_->TopK(qv, k, MakeSkipFn(*graph_, query), &examined);
  std::vector<std::pair<double, uint32_t>> pairs;
  pairs.reserve(scored.size());
  for (const auto& [ip, id] : scored) {
    double d2 = std::max(0.0, qnorm2 - ip);
    pairs.emplace_back(std::sqrt(d2), id);
  }
  std::sort(pairs.begin(), pairs.end());
  return FinalizeHits(std::move(pairs), examined);
}

}  // namespace vkg::query
