#ifndef VKG_QUERY_QUERY_CONTEXT_H_
#define VKG_QUERY_QUERY_CONTEXT_H_

#include <cstdint>
#include <new>
#include <vector>

#include "obs/trace.h"
#include "util/arena.h"
#include "util/deadline.h"
#include "util/failpoint.h"

namespace vkg::query {

/// How trustworthy a query answer is. Attached to every TopKResult and
/// AggregateResult so callers can distinguish a complete answer from a
/// best-effort one produced under a deadline, a cancellation, or a
/// resource budget.
struct ResultQuality {
  /// True when the query ran to completion; false when it stopped early
  /// and the answer is the best found so far.
  bool exact = true;
  /// Why the query stopped early (kNone when exact).
  util::StopReason stop_reason = util::StopReason::kNone;
  /// S2 radius around the query center inside which every point was
  /// examined before the query stopped. The Theorem 2/3 guarantees hold
  /// within this radius even for a degraded answer; 0 when nothing was
  /// certified (or the engine has no spatial traversal order).
  double certified_radius = 0.0;

  bool truncated() const { return !exact; }
  bool deadline_exceeded() const {
    return stop_reason == util::StopReason::kDeadline;
  }
};

/// Per-query mutable scratch state. Engines themselves are immutable
/// while answering a query (`TopKQuery` is const); everything a single
/// query mutates — the visit-stamp deduplication array, reusable
/// candidate/distance buffers, and the deadline/budget control block —
/// lives here. A context is cheap to reuse across queries and must not
/// be shared between concurrent callers: batched execution keeps one
/// context per worker thread.
class QueryContext {
 public:
  QueryContext() = default;

  /// The deadline / cancellation / resource-budget control block checked
  /// cooperatively by the engines. Configure it before issuing a query;
  /// call control().ResetForQuery() when reusing one context across
  /// queries (the batch executor does this automatically).
  util::QueryControl& control() { return control_; }
  const util::QueryControl& control() const { return control_; }

  /// The visit-stamp array sized for `n` entities, plus a fresh stamp
  /// value. An entity was already examined in the current query iff
  /// stamps[id] == stamp. Handles stamp wrap-around by zero-filling.
  ///
  /// Enforces ResourceBudget::max_scratch_bytes: when the array would
  /// exceed the budget the query is flagged stopped (scratch-budget) so
  /// the engine degrades to its seed candidates, but the allocation
  /// still happens — the caller gets a valid (best-effort) answer
  /// instead of a crash or an empty result.
  struct Stamped {
    uint32_t* stamps;
    uint32_t stamp;
  };
  Stamped BeginQuery(size_t n) {
    if (VKG_FAILPOINT("alloc.scratch")) throw std::bad_alloc();
    const size_t budget = control_.budget().max_scratch_bytes;
    if (budget > 0 && n * sizeof(uint32_t) > budget) {
      control_.NoteScratchOverflow();
    }
    if (visit_stamp_.size() != n) {
      visit_stamp_.assign(n, 0);
      stamp_ = 0;
    }
    if (++stamp_ == 0) {  // wrapped: every old stamp is stale
      visit_stamp_.assign(n, 0);
      stamp_ = 1;
    }
    return {visit_stamp_.data(), stamp_};
  }

  /// The per-query bump arena: candidate/distance buffers, re-rank
  /// heaps, query-center and JL projection scratch. Engines Reset() it
  /// on entry, so anything allocated from it lives until the next query
  /// on this context (util::Arena lifetime rules, DESIGN.md §6j).
  /// Contexts are per-worker-thread, so arenas are per-shard for free.
  util::Arena& arena() { return arena_; }

  /// The per-query trace the engines record phase spans into, or null
  /// (the default) when this query is not being traced. The context does
  /// not own the trace; the caller attaches one before the query and
  /// reads it after (see BatchOptions::trace_hook and the CLI --trace
  /// flag). Untraced queries pay one pointer compare per span site.
  obs::Trace* trace() const { return trace_; }
  void set_trace(obs::Trace* trace) { trace_ = trace; }

 private:
  util::QueryControl control_;
  obs::Trace* trace_ = nullptr;
  std::vector<uint32_t> visit_stamp_;
  uint32_t stamp_ = 0;
  util::Arena arena_;
};

}  // namespace vkg::query

#endif  // VKG_QUERY_QUERY_CONTEXT_H_
