#ifndef VKG_QUERY_QUERY_CONTEXT_H_
#define VKG_QUERY_QUERY_CONTEXT_H_

#include <cstdint>
#include <vector>

namespace vkg::query {

/// Per-query mutable scratch state. Engines themselves are immutable
/// while answering a query (`TopKQuery` is const); everything a single
/// query mutates — the visit-stamp deduplication array and reusable
/// candidate/distance buffers — lives here. A context is cheap to reuse
/// across queries and must not be shared between concurrent callers:
/// batched execution keeps one context per worker thread.
class QueryContext {
 public:
  QueryContext() = default;

  /// The visit-stamp array sized for `n` entities, plus a fresh stamp
  /// value. An entity was already examined in the current query iff
  /// stamps[id] == stamp. Handles stamp wrap-around by zero-filling.
  struct Stamped {
    uint32_t* stamps;
    uint32_t stamp;
  };
  Stamped BeginQuery(size_t n) {
    if (visit_stamp_.size() != n) {
      visit_stamp_.assign(n, 0);
      stamp_ = 0;
    }
    if (++stamp_ == 0) {  // wrapped: every old stamp is stale
      visit_stamp_.assign(n, 0);
      stamp_ = 1;
    }
    return {visit_stamp_.data(), stamp_};
  }

  /// Scratch buffers for the batched exact re-rank (candidate ids and
  /// their squared S1 distances).
  std::vector<uint32_t>& id_scratch() { return id_scratch_; }
  std::vector<double>& dist_scratch() { return dist_scratch_; }

 private:
  std::vector<uint32_t> visit_stamp_;
  uint32_t stamp_ = 0;
  std::vector<uint32_t> id_scratch_;
  std::vector<double> dist_scratch_;
};

}  // namespace vkg::query

#endif  // VKG_QUERY_QUERY_CONTEXT_H_
