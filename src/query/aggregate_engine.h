#ifndef VKG_QUERY_AGGREGATE_ENGINE_H_
#define VKG_QUERY_AGGREGATE_ENGINE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/workload.h"
#include "embedding/store.h"
#include "index/cracking_rtree.h"
#include "kg/graph.h"
#include "query/topk_engine.h"
#include "transform/jl_transform.h"
#include "util/status.h"

namespace vkg::query {

/// SQL-style aggregate kinds (Section II / Section V-B).
enum class AggKind { kCount, kSum, kAvg, kMax, kMin };

std::string_view AggKindName(AggKind kind);

/// Specification of one aggregate query over the predicted neighborhood
/// of (anchor, relation).
struct AggregateSpec {
  data::Query query;
  AggKind kind = AggKind::kCount;
  /// Attribute column aggregated (ignored for COUNT). Entities lacking
  /// the attribute are excluded from the relevant set.
  std::string attribute;
  /// p_tau: the ball holds entities with probability >= p_tau.
  double prob_threshold = 0.05;
  /// a: number of closest data points accessed; 0 accesses all in the
  /// ball (a = b).
  size_t sample_size = 0;
};

/// Result of an aggregate query.
struct AggregateResult {
  double value = 0.0;
  size_t accessed = 0;          // a
  double estimated_total = 0.0; // estimate of b
  double prob_mass_accessed = 0.0;   // sum of p_i over the sample
  double prob_mass_estimated = 0.0;  // estimated sum over all b points
  /// Values v_i of the accessed points (for Theorem 4 evaluation).
  std::vector<double> sample_values;
  /// Degradation marker: a deadline / budget trip shrinks the accessed
  /// sample (the unaccessed remainder is still estimated from the
  /// contour, widening the Theorem 4 error), it never fails the query.
  ResultQuality quality;
};

/// Approximate aggregate query processing over the S2 R-tree index
/// (Section V-B).
///
/// The engine finds the ball of relevant entities (radius r_tau derived
/// from p_tau via the probability model), walks candidates in ascending
/// *S2* distance — so per-point work scales with the sample size a — and
/// accesses the attribute records of the a closest points. The
/// probability mass of unaccessed points is estimated from their cheap
/// S2 distances (the JL transform preserves distances in expectation),
/// realizing the paper's contour-based estimate at per-point
/// granularity. Estimators: Eq. 3 for COUNT/SUM/AVG and Eq. 4 for
/// MAX/MIN.
class AggregateEngine {
 public:
  AggregateEngine(const kg::KnowledgeGraph* graph,
                  const embedding::EmbeddingStore* store,
                  const transform::JlTransform* jl,
                  index::CrackingRTree* tree, double eps,
                  bool crack_after_query);

  /// Answers `spec` using `ctx` for per-query scratch state; NotFound if
  /// the attribute column does not exist (except COUNT), InvalidArgument
  /// for a bad threshold. `ctx` must not be shared between concurrent
  /// callers.
  util::Result<AggregateResult> Aggregate(const AggregateSpec& spec,
                                          QueryContext& ctx) const;

  /// Single-query convenience form (fresh context per call).
  util::Result<AggregateResult> Aggregate(const AggregateSpec& spec) const {
    QueryContext ctx;
    return Aggregate(spec, ctx);
  }

  /// Exact ground truth: accesses every entity (no index), a = b, exact
  /// distances. Used for the accuracy metric of Figures 12-16.
  util::Result<AggregateResult> ExactAggregate(
      const AggregateSpec& spec) const;

  /// The cracking tree serializes its own mutation (DESIGN.md §6d), so
  /// concurrent aggregates are safe even when they crack; see
  /// TopKEngine::SupportsConcurrentQueries.
  bool SupportsConcurrentQueries() const { return true; }

  /// The knowledge graph answered over (for batch-side validation).
  const kg::KnowledgeGraph* graph() const { return graph_; }

 private:
  struct BallPoint {
    uint32_t id;
    double dist;  // S1 for accessed/exact, S2-estimate for unaccessed
    double prob;
  };

  util::Result<AggregateResult> Estimate(const AggregateSpec& spec,
                                         std::span<const BallPoint> accessed,
                                         double unaccessed_mass,
                                         double unaccessed_count) const;

  const kg::KnowledgeGraph* graph_;
  const embedding::EmbeddingStore* store_;
  const transform::JlTransform* jl_;
  index::CrackingRTree* tree_;
  double eps_;
  bool crack_after_query_;
  /// Top-1 probe shared across queries to find d_min (never cracks; the
  /// aggregate's own final region does). Stateless per query, so safe to
  /// share between concurrent callers with distinct contexts.
  std::unique_ptr<RTreeTopKEngine> top1_;
};

}  // namespace vkg::query

#endif  // VKG_QUERY_AGGREGATE_ENGINE_H_
