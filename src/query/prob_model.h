#ifndef VKG_QUERY_PROB_MODEL_H_
#define VKG_QUERY_PROB_MODEL_H_

#include <algorithm>

namespace vkg::query {

/// Distance-to-probability calibration of Section V-B: the entity closest
/// to the query center (S1 distance d_min) has probability 1 for the
/// relationship, and other entities' probabilities are inversely
/// proportional to their distances: p(d) = d_min / d.
///
/// The ball of relevant entities for an aggregate query with probability
/// threshold p_tau is then { d <= d_min / p_tau }.
class ProbabilityModel {
 public:
  /// `d_min` is the S1 distance of the closest (non-skipped) entity;
  /// clamped away from zero so probabilities stay finite.
  explicit ProbabilityModel(double d_min)
      : d_min_(std::max(d_min, kMinDistance)) {}

  /// Probability assigned to an entity at S1 distance `dist` (in [0,1]).
  double ProbabilityAt(double dist) const {
    if (dist <= d_min_) return 1.0;
    return d_min_ / dist;
  }

  /// Ball radius r_tau such that ProbabilityAt(r_tau) == p_tau.
  /// Requires 0 < p_tau <= 1.
  double RadiusForThreshold(double p_tau) const { return d_min_ / p_tau; }

  double d_min() const { return d_min_; }

 private:
  static constexpr double kMinDistance = 1e-9;
  double d_min_;
};

}  // namespace vkg::query

#endif  // VKG_QUERY_PROB_MODEL_H_
